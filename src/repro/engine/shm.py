"""Shared-memory transport for dense time matrices.

Closes the ROADMAP item "shared-memory or copy-on-write table
transport for the process pool": instead of every pool worker holding
a private copy of each SOC's wrapper time tables, the parent builds
the dense N×W matrix once (:func:`repro.engine.kernel.
build_dense_matrix`), publishes its int64 bytes in one
``multiprocessing.shared_memory`` segment, and ships workers a tiny
:class:`DenseDescriptor` (segment name, shape, SOC fingerprint).
Workers attach read-only and wrap the buffer zero-copy; the matrix —
plus on-demand :class:`~repro.engine.kernel.DenseTimeTable` designs
for final reporting — replaces their private table builds.

Degradation is graceful at both ends:

* if creating a segment fails (no ``/dev/shm``, permissions, size
  limits), the descriptor carries the raw matrix bytes instead and
  rides the normal pickle channel to the workers;
* if *attaching* fails in a worker, the worker silently falls back to
  its private :class:`~repro.engine.cache.WrapperTableCache` — the
  pre-transport behaviour.

Segment lifetime is owned by the parent-side :class:`SegmentRegistry`:
segments are unlinked on :meth:`SegmentRegistry.close` (wired to pool
shutdown in :class:`~repro.engine.batch.BatchRunner`).  Attached
workers keep their mappings alive until process exit — on POSIX an
unlinked segment survives for exactly as long as someone maps it.

Python ≤ 3.12 registers *attached* segments with the worker's
``resource_tracker`` too, which would tear a segment down (and warn)
as soon as any one worker exits; the attach path therefore
unregisters them — cleanup stays the creator's job.
"""

from __future__ import annotations

import atexit
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.engine.kernel import DenseTimeMatrix

try:  # pragma: no cover - import guard for exotic builds
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - no _posixshmem / _winapi
    _shared_memory = None  # type: ignore[assignment]


@dataclass(frozen=True)
class DenseDescriptor:
    """Everything a worker needs to reconstruct a dense matrix.

    Exactly one of ``shm_name`` (shared-memory fast path) and
    ``payload`` (pickled-bytes fallback) is set.  ``fingerprint`` is
    the :func:`repro.soc.fingerprint.soc_fingerprint` of the SOC the
    matrix was built for — workers verify it against each job's SOC
    before trusting the matrix.
    """

    fingerprint: str
    num_cores: int
    total_width: int
    shm_name: Optional[str] = None
    payload: Optional[bytes] = None


class SegmentRegistry:
    """Parent-side owner of published dense-matrix segments.

    Keyed by SOC fingerprint; republishing for a wider width replaces
    (and unlinks) the narrower segment.  :meth:`close` frees
    everything — :class:`~repro.engine.batch.BatchRunner` calls it
    when its pool goes away.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, Tuple[object, DenseDescriptor]] = {}

    def publish(
        self, fingerprint: str, matrix: DenseTimeMatrix
    ) -> DenseDescriptor:
        """A descriptor for ``matrix``, creating/reusing its segment.

        A segment already published for ``fingerprint`` is reused when
        wide enough; otherwise it is replaced.  When shared memory is
        unavailable the descriptor falls back to carrying the matrix
        bytes inline (the pickle channel).
        """
        held = self._segments.get(fingerprint)
        if held is not None:
            _, descriptor = held
            if descriptor.total_width >= matrix.total_width:
                return descriptor
            self._release(fingerprint)
        data = matrix.to_bytes()
        descriptor = None
        if _shared_memory is not None:
            try:
                segment = _shared_memory.SharedMemory(
                    create=True, size=len(data)
                )
                segment.buf[:len(data)] = data
                descriptor = DenseDescriptor(
                    fingerprint=fingerprint,
                    num_cores=matrix.num_cores,
                    total_width=matrix.total_width,
                    shm_name=segment.name,
                )
                self._segments[fingerprint] = (segment, descriptor)
            except OSError:
                descriptor = None
        if descriptor is None:
            # Fallback descriptors are registered too (segment-less),
            # so repeated runs reuse the packed bytes instead of
            # re-serializing the matrix each time.  The bytes still
            # ride the pickle channel per job item — the remaining
            # cost of degraded mode.
            descriptor = DenseDescriptor(
                fingerprint=fingerprint,
                num_cores=matrix.num_cores,
                total_width=matrix.total_width,
                payload=data,
            )
            self._segments[fingerprint] = (None, descriptor)
        return descriptor

    def _release(self, fingerprint: str) -> None:
        segment, _ = self._segments.pop(fingerprint)
        if segment is None:
            return
        try:
            segment.close()  # type: ignore[attr-defined]
            segment.unlink()  # type: ignore[attr-defined]
        except OSError:  # pragma: no cover - already gone
            pass

    def close(self) -> None:
        """Unlink every published segment (idempotent)."""
        for fingerprint in list(self._segments):
            self._release(fingerprint)

    def __len__(self) -> int:
        return len(self._segments)


#: Worker-side cache of reconstructed matrices, keyed by SOC
#: fingerprint — one attach (or payload unpack) per matrix per worker
#: process, its column/pick-order memos shared by every job that
#: names it.  The value's first element identifies the exact matrix
#: (segment name, or shape for payload fallbacks): a descriptor
#: naming a *different* one for the same fingerprint supersedes the
#: entry, releasing the stale mapping instead of pinning every
#: generation of a growing matrix for the worker's lifetime.
_ATTACHED: Dict[str, Tuple[object, DenseTimeMatrix, Optional[object]]] = {}
_CLEANUP_REGISTERED = False


def _release_entry(fingerprint: str) -> None:
    _, matrix, segment = _ATTACHED.pop(fingerprint)
    matrix.release()
    if segment is not None:
        try:
            segment.close()  # type: ignore[attr-defined]
        except OSError:  # pragma: no cover - already unmapped
            pass


def _close_attachments() -> None:  # pragma: no cover - process exit
    for fingerprint in list(_ATTACHED):
        _release_entry(fingerprint)


def attach(descriptor: DenseDescriptor) -> Optional[DenseTimeMatrix]:
    """The descriptor's matrix, or ``None`` when it cannot be had.

    Matrices are reconstructed once per worker process and cached by
    SOC fingerprint — zero-copy attach for shared segments, a single
    unpack for bytes-fallback payloads — so repeated jobs share the
    memoized columns either way.  Any attach failure (segment already
    unlinked, shared memory unsupported) returns ``None`` so the
    caller can fall back to private tables.
    """
    global _CLEANUP_REGISTERED
    use_payload = descriptor.payload is not None
    if not use_payload and (
        descriptor.shm_name is None or _shared_memory is None
    ):
        return None
    identity: object = (
        (descriptor.num_cores, descriptor.total_width) if use_payload
        else descriptor.shm_name
    )
    held = _ATTACHED.get(descriptor.fingerprint)
    if held is not None:
        if held[0] == identity:
            return held[1]
        _release_entry(descriptor.fingerprint)
    segment = None
    if use_payload:
        matrix = DenseTimeMatrix.from_buffer(
            descriptor.payload,
            descriptor.num_cores,
            descriptor.total_width,
        )
    else:
        try:
            segment = _attach_untracked(descriptor.shm_name)
        except (OSError, ValueError):
            return None
        expected = descriptor.num_cores * descriptor.total_width * 8
        if segment.size < expected:  # pragma: no cover - size mismatch
            segment.close()
            return None
        matrix = DenseTimeMatrix.from_buffer(
            segment.buf[:expected],
            descriptor.num_cores,
            descriptor.total_width,
        )
    if not _CLEANUP_REGISTERED:
        _CLEANUP_REGISTERED = True
        atexit.register(_close_attachments)
    _ATTACHED[descriptor.fingerprint] = (identity, matrix, segment)
    return matrix


def _attach_untracked(name: str):
    """Attach to ``name`` without telling the resource tracker.

    Python ≤ 3.12 registers *attached* segments with the resource
    tracker too; with the pool's shared tracker that interleaves
    registrations and the creator's eventual unregister arbitrarily,
    producing spurious unlinks and tracker warnings.  Cleanup belongs
    to the creating process alone, so the registration is suppressed
    for the duration of the attach (the standard workaround for
    https://github.com/python/cpython/issues/82300; Python 3.13's
    ``track=False`` makes it official).
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - exotic build
        return _shared_memory.SharedMemory(name=name)
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original
