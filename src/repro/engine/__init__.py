"""Shared-table caching and batch execution for design-space sweeps.

The paper's method builds one monotonized T*(w) staircase per core
(:class:`~repro.wrapper.pareto.TimeTable`) and then answers every
width question by O(1) lookup.  Historically each layer of this repo
rebuilt those tables for itself — ``co_optimize`` built them, the
analysis layer built them again for certificates and utilization, and
a width sweep repeated all of it per width, turning an O(W) family of
wrapper designs into O(W²) work.  This subpackage is the reuse layer
that removes the waste:

* :mod:`~repro.engine.cache` — :class:`WrapperTableCache`, which
  builds each core's table once at the largest width requested so
  far, extends it in place when a larger width arrives, and hands the
  very same :class:`~repro.wrapper.pareto.TimeTable` objects to every
  consumer;
* :mod:`~repro.engine.batch` — :class:`BatchRunner`, which fans
  (SOC, W, B) jobs out over a ``concurrent.futures`` process pool
  with a per-worker cache, so whole design-space sweeps run in
  parallel while each worker still pays for every (core, width)
  wrapper design at most once.

Two further modules make the hot path fast:

* :mod:`~repro.engine.kernel` — the dense time-matrix sweep kernel:
  the N×W testing-time matrix built once per sweep
  (:class:`DenseTimeMatrix`), memoized per-width columns and pick
  orders, an allocation-free bit-identical ``Core_assign``
  (:func:`kernel_assign`), and the O(1) admissible partition lower
  bound behind ``partition_evaluate(prune="lb")``;
* :mod:`~repro.engine.shm` — shared-memory transport of those
  matrices (and their wrapper-design staircases) to pool workers, so
  a batch's workers read one copy instead of each building their own
  tables, plus the :class:`~repro.engine.shm.IncumbentBoard` that
  broadcasts incumbents between the shards of a single job's sharded
  partition sweep (:mod:`repro.partition.shard`,
  ``BatchRunner(shard=...)``).

The sequential sweeps in :mod:`repro.analysis.sweep` and the
``repro-tam batch`` CLI subcommand are both thin wrappers over this
engine.
"""

from repro.engine.cache import WrapperTableCache
from repro.engine.kernel import (
    DenseTimeMatrix,
    DenseTimeTable,
    KernelWorkspace,
    build_dense_matrix,
    dense_time_tables,
    kernel_assign,
    sweep_assign,
)
from repro.engine.batch import (
    BatchJob,
    BatchRunner,
    FailedPoint,
    evaluate_point,
    grid_rows,
    split_results,
)

__all__ = [
    "WrapperTableCache",
    "DenseTimeMatrix",
    "DenseTimeTable",
    "KernelWorkspace",
    "build_dense_matrix",
    "dense_time_tables",
    "kernel_assign",
    "sweep_assign",
    "BatchJob",
    "BatchRunner",
    "FailedPoint",
    "evaluate_point",
    "grid_rows",
    "split_results",
]
