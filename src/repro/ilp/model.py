"""Modeling layer for small mixed 0-1 linear programs.

Supports exactly what the paper's formulations need: bounded
continuous and binary/integer variables, linear expressions, linear
constraints (``<=``, ``>=``, ``==``) and a linear objective.

Expressions support natural arithmetic::

    model = Model("paw")
    x = model.add_binary("x_1_2")
    tau = model.add_continuous("tau", lower=0.0)
    model.add_constraint(34 * x - tau, "<=", 0.0)
    model.minimize(tau)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.exceptions import ConfigurationError, ValidationError

Number = Union[int, float]
_SENSES = ("<=", ">=", "==")


class LinExpr:
    """A linear expression: ``sum(coef * var) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(
        self,
        terms: Optional[Dict[int, float]] = None,
        constant: float = 0.0,
    ) -> None:
        self.terms: Dict[int, float] = dict(terms or {})
        self.constant = float(constant)

    # -- construction helpers ------------------------------------------
    @staticmethod
    def _coerce(value: "ExprLike") -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return LinExpr({value.index: 1.0})
        if isinstance(value, (int, float)):
            return LinExpr(constant=float(value))
        raise TypeError(f"cannot build a LinExpr from {value!r}")

    def copy(self) -> "LinExpr":
        """Independent copy (terms dict is not shared)."""
        return LinExpr(dict(self.terms), self.constant)

    # -- arithmetic -----------------------------------------------------
    def __add__(self, other: "ExprLike") -> "LinExpr":
        other = self._coerce(other)
        result = self.copy()
        for index, coef in other.terms.items():
            result.terms[index] = result.terms.get(index, 0.0) + coef
        result.constant += other.constant
        return result

    def __radd__(self, other: "ExprLike") -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other: "ExprLike") -> "LinExpr":
        return self.__add__(self._coerce(other) * -1.0)

    def __rsub__(self, other: "ExprLike") -> "LinExpr":
        return self._coerce(other).__sub__(self)

    def __mul__(self, scalar: Number) -> "LinExpr":
        if not isinstance(scalar, (int, float)):
            raise TypeError("LinExpr can only be scaled by a number")
        return LinExpr(
            {index: coef * scalar for index, coef in self.terms.items()},
            self.constant * scalar,
        )

    def __rmul__(self, scalar: Number) -> "LinExpr":
        return self.__mul__(scalar)

    def __neg__(self) -> "LinExpr":
        return self.__mul__(-1.0)

    def __repr__(self) -> str:
        parts = [
            f"{coef:+g}*v{index}" for index, coef in sorted(self.terms.items())
        ]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


@dataclass(frozen=True)
class Variable:
    """A decision variable; create only via :class:`Model` methods."""

    name: str
    index: int
    lower: float
    upper: float
    integer: bool

    # Variables participate in expression arithmetic by coercion.
    def __add__(self, other: "ExprLike") -> LinExpr:
        return LinExpr._coerce(self) + other

    def __radd__(self, other: "ExprLike") -> LinExpr:
        return LinExpr._coerce(self) + other

    def __sub__(self, other: "ExprLike") -> LinExpr:
        return LinExpr._coerce(self) - other

    def __rsub__(self, other: "ExprLike") -> LinExpr:
        return LinExpr._coerce(other) - LinExpr._coerce(self)

    def __mul__(self, scalar: Number) -> LinExpr:
        return LinExpr._coerce(self) * scalar

    def __rmul__(self, scalar: Number) -> LinExpr:
        return LinExpr._coerce(self) * scalar

    def __neg__(self) -> LinExpr:
        return LinExpr._coerce(self) * -1.0


ExprLike = Union[LinExpr, Variable, int, float]


@dataclass(frozen=True)
class Constraint:
    """``expr (sense) rhs`` with the constant folded into ``rhs``."""

    name: str
    terms: Dict[int, float]
    sense: str
    rhs: float


class Model:
    """A small mixed 0-1 linear program."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        self._objective: Optional[LinExpr] = None
        self._names: Dict[str, int] = {}

    # -- variables ------------------------------------------------------
    def add_variable(
        self,
        name: str,
        lower: float = 0.0,
        upper: float = float("inf"),
        integer: bool = False,
    ) -> Variable:
        """Add a variable with the given bounds."""
        if name in self._names:
            raise ConfigurationError(f"duplicate variable name {name!r}")
        if lower > upper:
            raise ConfigurationError(
                f"variable {name!r}: lower {lower} > upper {upper}"
            )
        variable = Variable(
            name=name,
            index=len(self.variables),
            lower=float(lower),
            upper=float(upper),
            integer=integer,
        )
        self.variables.append(variable)
        self._names[name] = variable.index
        return variable

    def add_binary(self, name: str) -> Variable:
        """Add a 0/1 variable."""
        return self.add_variable(name, lower=0.0, upper=1.0, integer=True)

    def add_continuous(
        self,
        name: str,
        lower: float = 0.0,
        upper: float = float("inf"),
    ) -> Variable:
        """Add a continuous variable."""
        return self.add_variable(name, lower=lower, upper=upper)

    def variable_by_name(self, name: str) -> Variable:
        """Look up a variable; raises ``KeyError`` when absent."""
        return self.variables[self._names[name]]

    # -- constraints and objective ---------------------------------------
    def add_constraint(
        self,
        lhs: ExprLike,
        sense: str,
        rhs: ExprLike,
        name: Optional[str] = None,
    ) -> Constraint:
        """Add ``lhs (sense) rhs``; either side may be an expression."""
        if sense not in _SENSES:
            raise ConfigurationError(
                f"sense must be one of {_SENSES}, got {sense!r}"
            )
        combined = LinExpr._coerce(lhs) - LinExpr._coerce(rhs)
        constraint = Constraint(
            name=name or f"c{len(self.constraints)}",
            terms={
                index: coef
                for index, coef in combined.terms.items()
                if coef != 0.0
            },
            sense=sense,
            rhs=-combined.constant,
        )
        if not constraint.terms:
            raise ValidationError(
                f"constraint {constraint.name!r} involves no variables"
            )
        self.constraints.append(constraint)
        return constraint

    def minimize(self, objective: ExprLike) -> None:
        """Set a minimization objective."""
        self._objective = LinExpr._coerce(objective)

    @property
    def objective(self) -> LinExpr:
        if self._objective is None:
            raise ConfigurationError(
                f"model {self.name!r} has no objective; call minimize()"
            )
        return self._objective

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def integer_indices(self) -> List[int]:
        """Indices of the integer-restricted variables."""
        return [v.index for v in self.variables if v.integer]

    def describe(self) -> str:
        """Size summary — the paper quotes N·B+1 variables, N+B rows."""
        integers = len(self.integer_indices)
        return (
            f"model {self.name}: {self.num_variables} variables "
            f"({integers} integer), {self.num_constraints} constraints"
        )
