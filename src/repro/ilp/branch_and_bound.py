"""Branch-and-bound over LP relaxations.

Best-bound search: nodes live in a priority queue keyed by their
parent's LP objective, so the globally most promising subproblem is
expanded next and the search can stop the moment the best open bound
meets the incumbent.  Branching splits the most fractional integer
variable into floor/ceil children expressed as bound overrides — the
LP matrix itself is built once.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ilp.model import Model
from repro.ilp.simplex import LpRelaxation
from repro.ilp.solution import Solution, SolveStatus

#: Integrality tolerance: LP values this close to an integer count as one.
INTEGRALITY_TOL = 1e-6
#: Prune tolerance on objective comparisons.
OBJECTIVE_TOL = 1e-9


@dataclass
class _Node:
    bound_overrides: Dict[int, Tuple[float, float]]
    parent_bound: float


class BranchAndBound:
    """Configurable branch-and-bound solver for a single model."""

    def __init__(self, model: Model, node_limit: int = 100_000) -> None:
        if node_limit < 1:
            raise ConfigurationError(
                f"node_limit must be >= 1, got {node_limit}"
            )
        self.model = model
        self.node_limit = node_limit
        self.relaxation = LpRelaxation(model)
        self.integer_indices = model.integer_indices

    # ------------------------------------------------------------------
    def solve(self) -> Solution:
        """Run the search and return the best integer solution found."""
        incumbent_objective = math.inf
        incumbent_point: Optional[np.ndarray] = None
        nodes_explored = 0
        exhausted = False

        counter = itertools.count()  # tie-breaker; nodes aren't orderable
        heap: list = []
        heapq.heappush(heap, (-math.inf, next(counter), _Node({}, -math.inf)))

        while heap:
            if nodes_explored >= self.node_limit:
                exhausted = True
                break
            parent_bound, _, node = heapq.heappop(heap)
            if parent_bound >= incumbent_objective - OBJECTIVE_TOL:
                continue  # bound can't improve the incumbent

            nodes_explored += 1
            lp = self.relaxation.solve(node.bound_overrides)
            if lp.unbounded:
                return Solution(
                    status=SolveStatus.UNBOUNDED,
                    objective=None,
                    nodes_explored=nodes_explored,
                )
            if not lp.feasible:
                continue
            assert lp.objective is not None and lp.point is not None
            if lp.objective >= incumbent_objective - OBJECTIVE_TOL:
                continue

            branch_index = self._most_fractional(lp.point)
            if branch_index is None:
                # Integer-feasible: new incumbent.
                incumbent_objective = lp.objective
                incumbent_point = lp.point
                continue

            value = lp.point[branch_index]
            for lower, upper in (
                self._child_bounds(node, branch_index, value, down=True),
                self._child_bounds(node, branch_index, value, down=False),
            ):
                overrides = dict(node.bound_overrides)
                overrides[branch_index] = (lower, upper)
                heapq.heappush(
                    heap,
                    (
                        lp.objective,
                        next(counter),
                        _Node(overrides, lp.objective),
                    ),
                )

        if incumbent_point is None:
            status = (
                SolveStatus.NO_SOLUTION if exhausted
                else SolveStatus.INFEASIBLE
            )
            return Solution(
                status=status, objective=None, nodes_explored=nodes_explored
            )

        values = {}
        for variable in self.model.variables:
            raw = float(incumbent_point[variable.index])
            if variable.integer:
                raw = float(round(raw))
            values[variable.name] = raw
        return Solution(
            status=(
                SolveStatus.FEASIBLE if exhausted else SolveStatus.OPTIMAL
            ),
            objective=incumbent_objective,
            values=values,
            nodes_explored=nodes_explored,
        )

    # ------------------------------------------------------------------
    def _most_fractional(self, point: np.ndarray) -> Optional[int]:
        """Index of the integer variable farthest from integrality."""
        best_index = None
        best_fraction = INTEGRALITY_TOL
        for index in self.integer_indices:
            fraction = abs(point[index] - round(point[index]))
            if fraction > best_fraction:
                best_fraction = fraction
                best_index = index
        return best_index

    def _child_bounds(
        self, node: _Node, index: int, value: float, down: bool
    ) -> Tuple[float, float]:
        variable = self.model.variables[index]
        lower, upper = node.bound_overrides.get(
            index,
            (
                variable.lower,
                variable.upper if variable.upper != float("inf")
                else math.inf,
            ),
        )
        if down:
            return (lower, math.floor(value))
        return (math.ceil(value), upper)


def solve_model(model: Model, node_limit: int = 100_000) -> Solution:
    """Convenience wrapper: ``BranchAndBound(model, node_limit).solve()``."""
    return BranchAndBound(model, node_limit=node_limit).solve()
