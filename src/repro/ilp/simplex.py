"""LP relaxations for the branch-and-bound solver.

Thin adapter from :class:`~repro.ilp.model.Model` (plus per-node bound
overrides) to ``scipy.optimize.linprog`` with the HiGHS backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import ReproError
from repro.ilp.model import Model


@dataclass(frozen=True)
class LpResult:
    """Outcome of one LP relaxation."""

    feasible: bool
    unbounded: bool
    objective: Optional[float]
    point: Optional[np.ndarray]


class LpRelaxation:
    """Reusable LP data for a model; per-node bounds vary only."""

    def __init__(self, model: Model) -> None:
        self.model = model
        num_vars = model.num_variables

        self.costs = np.zeros(num_vars)
        for index, coef in model.objective.terms.items():
            self.costs[index] = coef
        self.objective_constant = model.objective.constant

        ub_rows: List[np.ndarray] = []
        ub_rhs: List[float] = []
        eq_rows: List[np.ndarray] = []
        eq_rhs: List[float] = []
        for constraint in model.constraints:
            row = np.zeros(num_vars)
            for index, coef in constraint.terms.items():
                row[index] = coef
            if constraint.sense == "<=":
                ub_rows.append(row)
                ub_rhs.append(constraint.rhs)
            elif constraint.sense == ">=":
                ub_rows.append(-row)
                ub_rhs.append(-constraint.rhs)
            else:
                eq_rows.append(row)
                eq_rhs.append(constraint.rhs)
        self.a_ub = np.array(ub_rows) if ub_rows else None
        self.b_ub = np.array(ub_rhs) if ub_rhs else None
        self.a_eq = np.array(eq_rows) if eq_rows else None
        self.b_eq = np.array(eq_rhs) if eq_rhs else None

        self.base_bounds: List[Tuple[float, Optional[float]]] = [
            (
                variable.lower,
                None if variable.upper == float("inf") else variable.upper,
            )
            for variable in model.variables
        ]

    def solve(
        self,
        bound_overrides: Optional[Dict[int, Tuple[float, float]]] = None,
    ) -> LpResult:
        """Solve the relaxation with optional per-variable bounds."""
        bounds = list(self.base_bounds)
        if bound_overrides:
            for index, (lower, upper) in bound_overrides.items():
                if lower > upper:
                    return LpResult(
                        feasible=False, unbounded=False,
                        objective=None, point=None,
                    )
                bounds[index] = (lower, upper)

        outcome = linprog(
            c=self.costs,
            A_ub=self.a_ub,
            b_ub=self.b_ub,
            A_eq=self.a_eq,
            b_eq=self.b_eq,
            bounds=bounds,
            method="highs",
        )
        if outcome.status == 2:  # infeasible
            return LpResult(
                feasible=False, unbounded=False, objective=None, point=None
            )
        if outcome.status == 3:  # unbounded
            return LpResult(
                feasible=False, unbounded=True, objective=None, point=None
            )
        if outcome.status != 0:
            raise ReproError(
                f"LP solve failed with status {outcome.status}: "
                f"{outcome.message}"
            )
        return LpResult(
            feasible=True,
            unbounded=False,
            objective=float(outcome.fun) + self.objective_constant,
            point=np.asarray(outcome.x),
        )
