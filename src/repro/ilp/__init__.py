"""Generic mixed 0-1 integer linear programming substrate.

The paper's exact method formulates P_AW as an ILP and solves it with
``lpsolve 3.0`` [2].  No ILP solver ships with this environment, so
this subpackage provides one from scratch:

* :mod:`~repro.ilp.model` — a small modeling layer (variables, linear
  expressions, constraints, objective);
* :mod:`~repro.ilp.simplex` — LP relaxations via
  ``scipy.optimize.linprog`` (HiGHS);
* :mod:`~repro.ilp.branch_and_bound` — best-bound branch-and-bound on
  fractional variables, with node budgets;
* :mod:`~repro.ilp.solution` — solution/status reporting.

The dedicated combinatorial solver in :mod:`repro.assign.exact` is
much faster on P_AW's structure; this generic path exists for
fidelity to the paper and as an independent cross-check (the two are
tested against each other).
"""

from repro.ilp.model import LinExpr, Model, Variable
from repro.ilp.branch_and_bound import BranchAndBound, solve_model
from repro.ilp.solution import Solution, SolveStatus

__all__ = [
    "LinExpr",
    "Model",
    "Variable",
    "BranchAndBound",
    "solve_model",
    "Solution",
    "SolveStatus",
]
