"""Solution objects for the ILP substrate."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.ilp.model import Model, Variable


class SolveStatus(enum.Enum):
    """Terminal status of a solve."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"          # budget exhausted with an incumbent
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    NO_SOLUTION = "no_solution"    # budget exhausted, no incumbent


@dataclass(frozen=True)
class Solution:
    """Result of solving a :class:`~repro.ilp.model.Model`.

    ``values`` maps variable names to their (rounded, for integer
    variables) solution values; empty unless a feasible point exists.
    """

    status: SolveStatus
    objective: Optional[float]
    values: Dict[str, float] = field(default_factory=dict)
    nodes_explored: int = 0

    @property
    def is_feasible(self) -> bool:
        return self.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)

    def value(self, variable: Variable) -> float:
        """Value of ``variable`` in this solution."""
        return self.values[variable.name]

    def check_feasibility(self, model: Model, tolerance: float = 1e-6) -> bool:
        """Verify this solution against every constraint of ``model``.

        Used by tests as an independent certificate that the branch-
        and-bound bookkeeping is sound.
        """
        if not self.is_feasible:
            return False
        point = [self.values[v.name] for v in model.variables]
        for variable in model.variables:
            value = point[variable.index]
            if value < variable.lower - tolerance:
                return False
            if value > variable.upper + tolerance:
                return False
            if variable.integer and abs(value - round(value)) > tolerance:
                return False
        for constraint in model.constraints:
            activity = sum(
                coef * point[index]
                for index, coef in constraint.terms.items()
            )
            if constraint.sense == "<=" and activity > constraint.rhs + tolerance:
                return False
            if constraint.sense == ">=" and activity < constraint.rhs - tolerance:
                return False
            if constraint.sense == "==" and abs(activity - constraint.rhs) > tolerance:
                return False
        return True
