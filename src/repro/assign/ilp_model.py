"""The paper's ILP formulation of P_AW (Section 3.2), verbatim.

Variables: binary ``x_ij = 1`` iff core ``i`` is assigned to bus ``j``,
plus continuous ``tau`` (the SOC testing time).

    minimize  tau
    s.t.      sum_i  T(i, w_j) * x_ij  <=  tau      for every bus j
              sum_j  x_ij               =  1        for every core i

The paper measures the model's complexity as N*B variables and N+B
constraints; :func:`build_paw_model` reproduces exactly that count
(plus the single ``tau``).

This path runs on the from-scratch solver in :mod:`repro.ilp` and is
intentionally the *slow but literal* formulation — the production
pipelines use :func:`repro.assign.exact.exact_assign`, and the test
suite checks the two agree.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.exceptions import InfeasibleError
from repro.ilp.branch_and_bound import BranchAndBound
from repro.ilp.model import Model
from repro.ilp.solution import Solution, SolveStatus
from repro.tam.assignment import AssignmentResult, evaluate_assignment


def build_paw_model(
    times: Sequence[Sequence[int]], widths: Sequence[int]
) -> Model:
    """Build the P_AW ILP for the given times matrix and bus widths."""
    num_cores = len(times)
    num_buses = len(widths)
    model = Model(name=f"paw_{num_cores}x{num_buses}")

    assign_vars = [
        [
            model.add_binary(f"x_{core}_{bus}")
            for bus in range(num_buses)
        ]
        for core in range(num_cores)
    ]
    # tau needs no upper bound; the bus constraints pin it from below.
    tau = model.add_continuous("tau", lower=0.0)

    for bus in range(num_buses):
        load = sum(
            (times[core][bus] * assign_vars[core][bus]
             for core in range(num_cores)),
            start=tau * 0,
        )
        model.add_constraint(load - tau, "<=", 0.0, name=f"bus_{bus}")
    for core in range(num_cores):
        total = sum(
            (assign_vars[core][bus] for bus in range(num_buses)),
            start=tau * 0,
        )
        model.add_constraint(total, "==", 1.0, name=f"core_{core}")

    model.minimize(tau)
    return model


def extract_assignment(
    solution: Solution,
    num_cores: int,
    num_buses: int,
) -> List[int]:
    """Recover the 0-based assignment vector from a solved model."""
    assignment = []
    for core in range(num_cores):
        chosen = [
            bus for bus in range(num_buses)
            if solution.values.get(f"x_{core}_{bus}", 0.0) > 0.5
        ]
        if len(chosen) != 1:
            raise InfeasibleError(
                f"core {core} assigned to {len(chosen)} buses in the "
                "ILP solution"
            )
        assignment.append(chosen[0])
    return assignment


def solve_paw_ilp(
    times: Sequence[Sequence[int]],
    widths: Sequence[int],
    node_limit: int = 200_000,
) -> Tuple[AssignmentResult, Solution]:
    """Solve P_AW through the literal ILP formulation.

    Returns the assignment plus the raw :class:`Solution` (so callers
    can inspect node counts and status).  Raises
    :class:`~repro.exceptions.InfeasibleError` when no integer
    solution was found — which for this model can only mean the node
    budget was exhausted, since a feasible assignment always exists.
    """
    model = build_paw_model(times, widths)
    solution = BranchAndBound(model, node_limit=node_limit).solve()
    if not solution.is_feasible:
        raise InfeasibleError(
            f"ILP terminated without a solution: {solution.status.value}"
        )
    assignment = extract_assignment(solution, len(times), len(widths))
    result = evaluate_assignment(
        times,
        widths,
        assignment,
        optimal=solution.status is SolveStatus.OPTIMAL,
    )
    return result, solution
