"""Lower bounds for problem P_AW, used by the exact solver's pruning.

All bounds take the per-core/per-bus times matrix; buses are unrelated
machines because a core's time depends on its bus's width.
"""

from __future__ import annotations

from math import ceil
from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.schedule.makespan import (
    saturation_lower_bound,
    unrelated_lower_bound,
)


def paw_lower_bound(times: Sequence[Sequence[int]]) -> int:
    """Best static lower bound on the P_AW makespan."""
    return unrelated_lower_bound(times)


def column_lower_bound(
    max_time: int, total_time: int, num_buses: int
) -> int:
    """:func:`paw_lower_bound` from widest-column aggregates, in O(1).

    Per-core testing times are monotone non-increasing in bus width,
    so for any width partition every core's minimum over its buses is
    its time on the *widest* bus.  Given that column's maximum
    (:func:`~repro.schedule.makespan.saturation_lower_bound`) and sum
    (the area bound's numerator), the full unrelated-machines bound
    collapses to this closed form — the O(1)-per-partition bound the
    dense sweep kernel (:mod:`repro.engine.kernel`) prunes with.
    """
    if num_buses < 1:
        raise ConfigurationError(
            f"num_buses must be >= 1, got {num_buses}"
        )
    return max(max_time, ceil(total_time / num_buses))


def partial_lower_bound(
    loads: Sequence[int],
    remaining_min_sum: int,
) -> int:
    """Bound for a partial assignment inside branch-and-bound.

    ``loads`` are the current bus times; every still-unassigned core
    will add at least its own minimum time (summed in
    ``remaining_min_sum``) to the total work.
    """
    num_buses = len(loads)
    area = ceil((sum(loads) + remaining_min_sum) / num_buses)
    return max(max(loads), area)


def placement_lower_bound(
    loads: Sequence[int],
    remaining: Sequence[int],
    times: Sequence[Sequence[int]],
) -> int:
    """Per-core placement bound: each remaining core must land somewhere.

    For every unassigned core the cheapest completed-bus time it can
    achieve is ``min_j (loads[j] + times[core][j])``; the makespan is
    at least the largest of these.  Tighter than the area bound when
    one oversized core dominates (the p31108 situation).
    """
    bound = max(loads) if loads else 0
    for core in remaining:
        best = min(
            loads[bus] + times[core][bus] for bus in range(len(loads))
        )
        if best > bound:
            bound = best
    return bound


__all__ = [
    "column_lower_bound",
    "paw_lower_bound",
    "partial_lower_bound",
    "placement_lower_bound",
    "saturation_lower_bound",
]
