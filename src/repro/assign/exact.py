"""Exact solver for problem P_AW — dedicated branch-and-bound.

Plays the role of the ILP model of [8] in the paper's methodology:
the exhaustive baseline runs it once per width partition, and the
co-optimization pipeline runs it once, on the partition chosen by
``Partition_evaluate``, as the final optimization step.

The problem is makespan minimization on unrelated machines
(R||Cmax): core ``i`` on bus ``j`` costs ``times[i][j]``.  The search:

* warm-starts from ``Core_assign`` (or a caller-provided incumbent),
* branches cores in decreasing order of their minimum time (hardest
  first), child buses in increasing resulting load,
* prunes with the area bound and the per-core placement bound
  (:mod:`repro.assign.lower_bounds`),
* breaks bus symmetry: a core never tries a bus whose (width, load)
  state duplicates an earlier bus's,
* degrades gracefully under node/time budgets, returning the incumbent
  with ``optimal=False`` (the paper notes some p21241 models were
  "particularly intractable" — the budget is how we keep the pipeline
  responsive on such instances).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.assign.core_assign import core_assign
from repro.assign.lower_bounds import (
    partial_lower_bound,
    placement_lower_bound,
    paw_lower_bound,
)
from repro.exceptions import ConfigurationError
from repro.tam.assignment import AssignmentResult, evaluate_assignment

#: Default search budgets; generous for the paper's instance sizes
#: (N <= 32, B <= 10) yet bounded so no single partition stalls a sweep.
DEFAULT_NODE_LIMIT = 2_000_000
DEFAULT_TIME_LIMIT = 30.0


@dataclass(frozen=True)
class ExactResult:
    """Outcome of the branch-and-bound search."""

    result: AssignmentResult
    optimal: bool
    nodes_explored: int
    elapsed_seconds: float


class _Search:
    """Mutable state of one branch-and-bound run."""

    def __init__(
        self,
        times: Sequence[Sequence[int]],
        widths: Sequence[int],
        node_limit: int,
        time_limit: float,
    ) -> None:
        self.times = times
        self.widths = widths
        self.num_cores = len(times)
        self.num_buses = len(widths)
        self.node_limit = node_limit
        self.time_limit = time_limit
        self.deadline = _time.monotonic() + time_limit
        self.nodes = 0
        self.exhausted = False

        # Hardest cores first: decreasing minimum time, then
        # decreasing maximum time.
        self.order = sorted(
            range(self.num_cores),
            key=lambda i: (min(times[i]), max(times[i])),
            reverse=True,
        )
        # suffix_min_sum[k]: total of per-core minimum times for
        # cores order[k:], for the area bound.
        self.suffix_min_sum = [0] * (self.num_cores + 1)
        for k in range(self.num_cores - 1, -1, -1):
            core = self.order[k]
            self.suffix_min_sum[k] = (
                self.suffix_min_sum[k + 1] + min(times[core])
            )

        self.best_time = float("inf")
        self.best_assignment: Optional[List[int]] = None
        self.global_lower_bound = paw_lower_bound(times)

    def seed(self, assignment: Sequence[int], testing_time: int) -> None:
        """Install a warm-start incumbent."""
        if testing_time < self.best_time:
            self.best_time = testing_time
            self.best_assignment = list(assignment)

    # ------------------------------------------------------------------
    def run(self) -> None:
        assignment = [0] * self.num_cores
        loads = [0] * self.num_buses
        self._dfs(0, assignment, loads)

    def _dfs(
        self, depth: int, assignment: List[int], loads: List[int]
    ) -> None:
        if self.exhausted:
            return
        self.nodes += 1
        if self.nodes >= self.node_limit:
            self.exhausted = True
            return
        if self.nodes % 4096 == 0 and _time.monotonic() > self.deadline:
            self.exhausted = True
            return

        if depth == self.num_cores:
            makespan = max(loads)
            if makespan < self.best_time:
                self.best_time = makespan
                self.best_assignment = list(assignment)
            return

        # Prune on bounds (strictly-better semantics).
        area = partial_lower_bound(loads, self.suffix_min_sum[depth])
        if area >= self.best_time:
            return
        placement = placement_lower_bound(
            loads, self.order[depth:], self.times
        )
        if placement >= self.best_time:
            return
        if self.best_time <= self.global_lower_bound:
            # Incumbent already provably optimal; cut everything.
            return

        core = self.order[depth]
        row = self.times[core]

        # Symmetry breaking: among buses in identical (width, load)
        # states the core only tries the first.
        candidates = []
        seen_states = set()
        for bus in range(self.num_buses):
            state = (self.widths[bus], loads[bus])
            if state in seen_states:
                continue
            seen_states.add(state)
            new_load = loads[bus] + row[bus]
            if new_load < self.best_time:
                candidates.append((new_load, bus))
        candidates.sort()

        for new_load, bus in candidates:
            if new_load >= self.best_time:
                break  # sorted: the rest are no better
            loads[bus] = new_load
            assignment[core] = bus
            self._dfs(depth + 1, assignment, loads)
            loads[bus] = new_load - row[bus]
            if self.exhausted:
                return


def exact_assign(
    times: Sequence[Sequence[int]],
    widths: Sequence[int],
    incumbent: Optional[AssignmentResult] = None,
    node_limit: int = DEFAULT_NODE_LIMIT,
    time_limit: float = DEFAULT_TIME_LIMIT,
) -> ExactResult:
    """Solve P_AW exactly (within budgets) for fixed bus widths.

    Parameters
    ----------
    times / widths:
        As for :func:`repro.assign.core_assign.core_assign`.
    incumbent:
        Optional warm-start assignment (e.g. from the heuristic); the
        solver also always runs ``Core_assign`` itself, so passing one
        only helps when it beats the heuristic.
    node_limit / time_limit:
        Search budgets.  On exhaustion the best-found assignment is
        returned with ``optimal=False``.

    Returns
    -------
    :class:`ExactResult` — the assignment, an optimality flag, and
    search statistics.
    """
    if node_limit < 1:
        raise ConfigurationError(f"node_limit must be >= 1: {node_limit}")
    if time_limit <= 0:
        raise ConfigurationError(f"time_limit must be > 0: {time_limit}")

    start = _time.monotonic()
    search = _Search(times, widths, node_limit, time_limit)

    heuristic = core_assign(times, widths)
    assert heuristic.result is not None  # no best_known => completes
    search.seed(heuristic.result.assignment, heuristic.testing_time)
    if incumbent is not None:
        search.seed(incumbent.assignment, incumbent.testing_time)

    search.run()
    elapsed = _time.monotonic() - start

    assert search.best_assignment is not None
    result = evaluate_assignment(
        times,
        widths,
        search.best_assignment,
        optimal=not search.exhausted,
    )
    return ExactResult(
        result=result,
        optimal=not search.exhausted,
        nodes_explored=search.nodes,
        elapsed_seconds=elapsed,
    )
