"""``Core_assign`` — the paper's heuristic for problem P_AW (Fig. 1).

An LPT-style list scheduler generalized to width-dependent testing
times, with the two tie-breaking rules of the pseudocode and the early
abort that makes ``Partition_evaluate`` fast:

1. pick the bus with the minimum summed testing time so far
   (ties: the *widest* such bus — Lines 10-12);
2. among unassigned cores, pick the one with the maximum testing time
   on that bus (Line 13); break ties by comparing the tied cores on
   the widest bus *strictly narrower* than the chosen one, preferring
   the core that would suffer most there (Lines 14-16 — the paper's
   worked example: cores 1 and 3 tie at 100 cycles on the 16-bit bus,
   and core 1's 200 > core 3's 150 on the 8-bit bus decides it);
3. assign, and if any bus's time now reaches the best-known SOC time
   ``tau``, give up and return ``tau`` unchanged (Lines 18-20) — no
   completion of this partition can beat the incumbent.

Complexity O(N·(N+B)) = O(N²) for N cores, as stated in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.exceptions import ConfigurationError, ValidationError
from repro.tam.assignment import AssignmentResult, evaluate_assignment


@dataclass(frozen=True)
class CoreAssignOutcome:
    """Outcome of one ``Core_assign`` run.

    ``completed`` is False when the early abort fired; then
    ``testing_time`` echoes the incumbent ``best_known`` and
    ``result`` is None (matching the pseudocode's "return tau").
    """

    completed: bool
    testing_time: int
    result: Optional[AssignmentResult]


def _validate(
    times: Sequence[Sequence[int]], widths: Sequence[int]
) -> None:
    if not widths:
        raise ConfigurationError("need at least one bus")
    for width in widths:
        if width < 1:
            raise ConfigurationError(f"bus width must be >= 1, got {width}")
    for row_index, row in enumerate(times):
        if len(row) != len(widths):
            raise ValidationError(
                f"times row {row_index} has {len(row)} entries for "
                f"{len(widths)} buses"
            )
        for value in row:
            if value < 0:
                raise ValidationError(
                    f"times row {row_index} contains negative time {value}"
                )


def _pick_bus(loads: List[int], widths: Sequence[int]) -> int:
    """Min-load bus; ties go to the widest (then lowest index)."""
    best = 0
    for bus in range(1, len(loads)):
        if loads[bus] < loads[best] or (
            loads[bus] == loads[best] and widths[bus] > widths[best]
        ):
            best = bus
    return best


def reference_buses(widths: Sequence[int]) -> List[int]:
    """Lines 14-16 tie-break reference per bus: -1 when none exists.

    For each bus, the widest bus *strictly narrower* than it (lowest
    index on width ties).  Depends only on ``widths``, so it is
    computed once per ``Core_assign`` call (and once per partition in
    the dense sweep kernel) instead of once per tie.
    """
    references = []
    for bus, width in enumerate(widths):
        reference = -1
        for b, other in enumerate(widths):
            if other < width and (
                reference < 0 or other > widths[reference]
            ):
                reference = b
        references.append(reference)
    return references


def _pick_core(
    unassigned: List[int],
    bus: int,
    times: Sequence[Sequence[int]],
    reference: int,
) -> int:
    """Max-time core on ``bus``; ties compare on the next-narrower bus.

    Tie-breaks are by explicit core index (not list position), so the
    choice is independent of the order of ``unassigned`` — which the
    caller's swap-pop removal scrambles.
    """
    max_time = max(times[core][bus] for core in unassigned)
    tied = [core for core in unassigned if times[core][bus] == max_time]
    if len(tied) == 1:
        return tied[0]
    if reference < 0:
        return min(tied)
    # Lines 14-16: on the widest bus strictly narrower than the chosen
    # one, prefer the core that would suffer most (lowest index last).
    return max(tied, key=lambda core: (times[core][reference], -core))


def core_assign(
    times: Sequence[Sequence[int]],
    widths: Sequence[int],
    best_known: Optional[int] = None,
) -> CoreAssignOutcome:
    """Assign cores to buses with the Fig. 1 heuristic.

    Parameters
    ----------
    times:
        ``times[i][j]`` — testing time of core ``i`` on bus ``j``
        (already reflecting the bus's width via ``Design_wrapper``).
    widths:
        Bus widths, used only by the tie-breaking rules.
    best_known:
        The incumbent SOC testing time ``tau``.  When any bus's summed
        time reaches it, the run aborts (``completed=False``).  Pass
        ``None`` to always run to completion.

    Returns
    -------
    :class:`CoreAssignOutcome`
    """
    _validate(times, widths)
    num_cores = len(times)
    if num_cores == 0:
        raise ConfigurationError("need at least one core")

    loads = [0] * len(widths)
    assignment = [0] * num_cores
    unassigned = list(range(num_cores))
    references = reference_buses(widths)

    while unassigned:
        bus = _pick_bus(loads, widths)
        core = _pick_core(unassigned, bus, times, references[bus])
        assignment[core] = bus
        loads[bus] += times[core][bus]
        if best_known is not None and max(loads) >= best_known:
            return CoreAssignOutcome(
                completed=False, testing_time=best_known, result=None
            )
        # Swap-pop: list.remove's O(N) element shift becomes an O(1)
        # overwrite (the position scan remains) — safe because
        # _pick_core's tie-breaks ignore list order.
        index = unassigned.index(core)
        unassigned[index] = unassigned[-1]
        unassigned.pop()

    result = evaluate_assignment(times, widths, assignment)
    return CoreAssignOutcome(
        completed=True,
        testing_time=result.testing_time,
        result=result,
    )
