"""Core assignment (problem :math:`P_{AW}`).

Three solvers for assigning cores to test buses of fixed widths:

* :func:`~repro.assign.core_assign.core_assign` — the paper's new
  O(N²) heuristic (Fig. 1), with early abort against a best-known
  testing time;
* :func:`~repro.assign.exact.exact_assign` — a dedicated
  branch-and-bound that solves P_AW exactly (the role the ILP model
  of [8] plays in the paper's final optimization step);
* :func:`~repro.assign.ilp_model.solve_paw_ilp` — the paper's actual
  ILP formulation, built on the generic solver in :mod:`repro.ilp`
  (slower; kept for fidelity and cross-validation).
"""

from repro.assign.core_assign import CoreAssignOutcome, core_assign
from repro.assign.exact import ExactResult, exact_assign
from repro.assign.ilp_model import build_paw_model, solve_paw_ilp
from repro.assign.lower_bounds import paw_lower_bound

__all__ = [
    "CoreAssignOutcome",
    "core_assign",
    "ExactResult",
    "exact_assign",
    "build_paw_model",
    "solve_paw_ilp",
    "paw_lower_bound",
]
