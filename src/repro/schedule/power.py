"""Power-constrained test scheduling (extension).

The paper deliberately separates TAM design from test scheduling and
cites integrated approaches ([9] Larsson & Peng, [13] Nourani &
Papachristou) as the alternative school.  This module adds the
standard power-aware refinement on top of a finished wrapper/TAM
architecture: cores dissipate test power while being tested, the SOC
has a power ceiling, and cores on *different* buses may need to be
serialized (not just cores sharing a bus) to respect it.

Model
-----
* every core ``i`` has test power ``p_i`` (arbitrary units) and its
  testing time on its assigned bus;
* cores on the same bus run serially (the test-bus model);
* at any instant, the sum of powers of all running cores must not
  exceed ``power_budget``.

The scheduler is greedy list scheduling on top of the fixed
assignment: repeatedly start, among buses that are idle, the pending
core with the longest testing time whose power fits the current
headroom; when nothing fits, advance time to the next completion.
Greedy is not optimal (the problem generalizes bin packing), but it
is fast, deterministic, and — as the tests verify — never violates
the budget and degrades gracefully to the unconstrained makespan
when the budget is loose.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, ValidationError
from repro.schedule.session import ScheduledTest, TestSchedule
from repro.tam.assignment import AssignmentResult


@dataclass(frozen=True)
class PowerProfile:
    """Per-core test power plus the SOC ceiling."""

    core_power: Tuple[int, ...]
    power_budget: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "core_power", tuple(self.core_power))
        if self.power_budget < 1:
            raise ConfigurationError(
                f"power_budget must be >= 1, got {self.power_budget}"
            )
        for power in self.core_power:
            if power < 0:
                raise ConfigurationError(
                    f"core power must be >= 0, got {power}"
                )
            if power > self.power_budget:
                raise ConfigurationError(
                    f"core power {power} exceeds the budget "
                    f"{self.power_budget}: that core can never run"
                )


@dataclass(frozen=True)
class PowerSchedule:
    """A power-feasible schedule with its accounting."""

    schedule: TestSchedule
    power_budget: int
    peak_power: int

    @property
    def makespan(self) -> int:
        return self.schedule.makespan


def _check_inputs(
    result: AssignmentResult,
    times: Sequence[Sequence[int]],
    profile: PowerProfile,
) -> None:
    if len(times) != len(result.assignment):
        raise ValidationError(
            f"times covers {len(times)} cores, assignment "
            f"{len(result.assignment)}"
        )
    if len(profile.core_power) != len(result.assignment):
        raise ValidationError(
            f"power profile covers {len(profile.core_power)} cores, "
            f"assignment {len(result.assignment)}"
        )


def schedule_with_power(
    result: AssignmentResult,
    times: Sequence[Sequence[int]],
    core_names: Sequence[str],
    profile: PowerProfile,
) -> PowerSchedule:
    """Schedule ``result``'s tests under the power ceiling.

    Returns a :class:`PowerSchedule` whose embedded
    :class:`~repro.schedule.session.TestSchedule` is overlap-free per
    bus and power-feasible at every instant.  The makespan is >= the
    unconstrained testing time and equals it when the budget never
    binds.
    """
    _check_inputs(result, times, profile)
    num_buses = len(result.widths)

    pending: List[List[int]] = [[] for _ in range(num_buses)]
    for core_index, bus in enumerate(result.assignment):
        pending[bus].append(core_index)
    # Longest test first within each bus (LPT flavour).
    for queue in pending:
        queue.sort(key=lambda core: times[core][result.assignment[core]],
                   reverse=True)

    sessions: List[ScheduledTest] = []
    running: List[Tuple[int, int, int]] = []  # (end, bus, core) heap
    bus_free = [True] * num_buses
    power_in_use = 0
    peak_power = 0
    now = 0

    def try_start() -> bool:
        """Start one fittable core; True if something started."""
        nonlocal power_in_use, peak_power
        best: Optional[Tuple[int, int]] = None  # (bus, core)
        best_time = -1
        for bus in range(num_buses):
            if not bus_free[bus] or not pending[bus]:
                continue
            for core in pending[bus]:
                power = profile.core_power[core]
                if power_in_use + power > profile.power_budget:
                    continue
                duration = times[core][bus]
                if duration > best_time:
                    best_time = duration
                    best = (bus, core)
                break  # queue is LPT-sorted; first fitting is best
        if best is None:
            return False
        bus, core = best
        pending[bus].remove(core)
        bus_free[bus] = False
        duration = times[core][bus]
        power_in_use += profile.core_power[core]
        peak_power = max(peak_power, power_in_use)
        heapq.heappush(running, (now + duration, bus, core))
        sessions.append(
            ScheduledTest(
                core_index=core,
                core_name=core_names[core],
                bus=bus,
                start=now,
                end=now + duration,
            )
        )
        return True

    total_cores = len(result.assignment)
    while len(sessions) < total_cores or running:
        while try_start():
            pass
        if not running:
            if len(sessions) < total_cores:
                raise ValidationError(
                    "scheduler wedged: nothing running and nothing "
                    "startable — inconsistent power profile"
                )
            break
        end, bus, core = heapq.heappop(running)
        now = max(now, end)
        bus_free[bus] = True
        power_in_use -= profile.core_power[core]
        # Release every other test completing at the same instant.
        while running and running[0][0] == end:
            _, other_bus, other_core = heapq.heappop(running)
            bus_free[other_bus] = True
            power_in_use -= profile.core_power[other_core]

    schedule = TestSchedule(
        widths=result.widths, sessions=tuple(sessions)
    )
    return PowerSchedule(
        schedule=schedule,
        power_budget=profile.power_budget,
        peak_power=peak_power,
    )


def verify_power_feasible(
    power_schedule: PowerSchedule,
    profile: PowerProfile,
) -> bool:
    """Independent check: power ceiling holds at every instant.

    Sweeps the session start/end events and accumulates instantaneous
    power; used by tests as the oracle for the scheduler.
    """
    events: List[Tuple[int, int]] = []
    for session in power_schedule.schedule.sessions:
        power = profile.core_power[session.core_index]
        events.append((session.start, power))
        events.append((session.end, -power))
    # Ends before starts at the same instant (back-to-back is legal).
    events.sort(key=lambda event: (event[0], event[1]))
    current = 0
    for _, delta in events:
        current += delta
        if current > profile.power_budget:
            return False
    return True
