"""Makespan lower bounds.

For identical machines the classical bounds are the longest job and
the average load.  For the TAM problem machines are *unrelated* (a
core's time depends on its bus width), so the bounds generalize:

* every core contributes at least its minimum time over all buses to
  the total work — giving the area bound;
* every core must run somewhere, so the SOC time is at least the
  smallest time the slowest-to-place core can achieve anywhere.

These bounds drive the pruning in the exact branch-and-bound solver
(:mod:`repro.assign.exact`) and give optimality certificates in
benchmarks (e.g. the p31108 saturation analysis of Section 4.3).
"""

from __future__ import annotations

from math import ceil
from typing import Sequence

from repro.exceptions import ConfigurationError


def identical_lower_bound(
    durations: Sequence[int], num_machines: int
) -> int:
    """max(longest job, ceil(total work / m)) for identical machines."""
    if num_machines < 1:
        raise ConfigurationError(
            f"num_machines must be >= 1, got {num_machines}"
        )
    if not durations:
        return 0
    return max(max(durations), ceil(sum(durations) / num_machines))


def unrelated_lower_bound(times: Sequence[Sequence[int]]) -> int:
    """Lower bound on makespan for unrelated machines.

    ``times[i][j]`` is the duration of job ``i`` on machine ``j``.
    Combines the per-job bound (every job needs at least its own
    minimum time) with the area bound over per-job minima.
    """
    if not times:
        return 0
    num_machines = len(times[0])
    if num_machines < 1:
        raise ConfigurationError("times matrix has zero machines")
    per_job_min = [min(row) for row in times]
    return max(max(per_job_min), ceil(sum(per_job_min) / num_machines))


def saturation_lower_bound(times: Sequence[Sequence[int]]) -> int:
    """The largest per-job minimum: no schedule beats its slowest job.

    This is the bound that pins p31108 in the paper: once the
    bottleneck core's bus is wide enough, the SOC time equals this
    value and more TAM wires cannot help.
    """
    if not times:
        return 0
    return max(min(row) for row in times)
