"""Multiprocessor-scheduling substrate.

``Core_assign`` is "based on an approximation algorithm for the
problem of scheduling n independent jobs on m parallel, equal
processors" (Section 2 of the paper) — i.e. LPT list scheduling.
This subpackage provides that substrate in its own right:

* :mod:`~repro.schedule.lpt` — Longest Processing Time scheduling on
  identical machines, with the Graham worst-case ratio;
* :mod:`~repro.schedule.makespan` — makespan lower bounds, for both
  identical and unrelated machines (the TAM case, where a core's time
  depends on its bus's width);
* :mod:`~repro.schedule.session` — test-session timelines (which core
  occupies which bus when) and an ASCII Gantt rendering.
"""

from repro.schedule.lpt import lpt_schedule, graham_bound
from repro.schedule.makespan import (
    identical_lower_bound,
    unrelated_lower_bound,
)
from repro.schedule.session import TestSchedule, build_schedule

__all__ = [
    "lpt_schedule",
    "graham_bound",
    "identical_lower_bound",
    "unrelated_lower_bound",
    "TestSchedule",
    "build_schedule",
]
