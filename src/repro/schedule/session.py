"""Test-session timelines: when each core occupies its bus.

Under the test-bus model cores sharing a bus are tested back-to-back.
:class:`TestSchedule` materializes the resulting timeline from an
assignment, supports overlap/completeness validation, and renders an
ASCII Gantt chart for reports and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.exceptions import ValidationError
from repro.tam.assignment import AssignmentResult


@dataclass(frozen=True)
class ScheduledTest:
    """One core's test session on one bus."""

    core_index: int
    core_name: str
    bus: int
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class TestSchedule:
    """A full SOC test schedule: per-bus sequences of test sessions."""

    # Domain class, not a pytest test case.
    __test__ = False

    widths: Tuple[int, ...]
    sessions: Tuple[ScheduledTest, ...]

    def __post_init__(self) -> None:
        for session in self.sessions:
            if session.start < 0 or session.end < session.start:
                raise ValidationError(
                    f"session for core {session.core_name!r} has invalid "
                    f"interval [{session.start}, {session.end})"
                )
            if not 0 <= session.bus < len(self.widths):
                raise ValidationError(
                    f"session for core {session.core_name!r} on "
                    f"nonexistent bus {session.bus}"
                )
        # No two sessions on one bus may overlap.
        by_bus: List[List[ScheduledTest]] = [
            [] for _ in range(len(self.widths))
        ]
        for session in self.sessions:
            by_bus[session.bus].append(session)
        for bus_sessions in by_bus:
            bus_sessions.sort(key=lambda s: s.start)
            for earlier, later in zip(bus_sessions, bus_sessions[1:]):
                if later.start < earlier.end:
                    raise ValidationError(
                        f"overlap on bus {earlier.bus}: "
                        f"{earlier.core_name} and {later.core_name}"
                    )

    @property
    def makespan(self) -> int:
        """Completion time of the last test session."""
        return max((session.end for session in self.sessions), default=0)

    def bus_sessions(self, bus: int) -> List[ScheduledTest]:
        """Sessions on ``bus``, ordered by start time."""
        return sorted(
            (s for s in self.sessions if s.bus == bus),
            key=lambda s: s.start,
        )

    def idle_time(self, bus: int) -> int:
        """Cycles bus ``bus`` sits idle before the SOC test completes."""
        busy = sum(s.duration for s in self.bus_sessions(bus))
        return self.makespan - busy

    def total_idle_time(self) -> int:
        """Total idle bus-cycles — the waste multi-TAM designs reduce."""
        return sum(self.idle_time(bus) for bus in range(len(self.widths)))

    def gantt(self, width: int = 72) -> str:
        """ASCII Gantt chart, one row per bus, ``width`` columns."""
        span = max(self.makespan, 1)
        lines = []
        for bus in range(len(self.widths)):
            cells = ["."] * width
            for session in self.bus_sessions(bus):
                start_col = int(session.start / span * width)
                end_col = max(start_col + 1, int(session.end / span * width))
                label = (str(session.core_index + 1) * width)[: end_col - start_col]
                for offset, char in enumerate(label):
                    if start_col + offset < width:
                        cells[start_col + offset] = char
            lines.append(
                f"bus {bus + 1} (w={self.widths[bus]:>2}) |{''.join(cells)}|"
            )
        lines.append(f"makespan: {self.makespan} cycles")
        return "\n".join(lines)


def build_schedule(
    result: AssignmentResult,
    times: Sequence[Sequence[int]],
    core_names: Sequence[str],
) -> TestSchedule:
    """Materialize the serial-per-bus schedule implied by ``result``.

    Cores on each bus are tested in SOC order (order does not affect
    the makespan under the test-bus model, only the timeline layout).
    """
    if len(core_names) != len(result.assignment):
        raise ValidationError(
            f"{len(core_names)} names for {len(result.assignment)} cores"
        )
    cursors = [0] * len(result.widths)
    sessions = []
    for core_index, bus in enumerate(result.assignment):
        duration = times[core_index][bus]
        start = cursors[bus]
        sessions.append(
            ScheduledTest(
                core_index=core_index,
                core_name=core_names[core_index],
                bus=bus,
                start=start,
                end=start + duration,
            )
        )
        cursors[bus] += duration
    schedule = TestSchedule(
        widths=tuple(result.widths), sessions=tuple(sessions)
    )
    if schedule.makespan != result.testing_time:
        raise ValidationError(
            f"schedule makespan {schedule.makespan} != assignment "
            f"testing time {result.testing_time}"
        )
    return schedule
