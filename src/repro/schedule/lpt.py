"""LPT (Longest Processing Time) scheduling on identical machines.

The classical Graham list-scheduling heuristic: sort jobs by
decreasing duration and always give the next job to the least-loaded
machine.  Its makespan is within ``4/3 - 1/(3m)`` of optimal — the
approximation result the paper's ``Core_assign`` generalizes to
width-dependent (unrelated-machine) times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class LptResult:
    """Outcome of LPT scheduling."""

    assignment: Tuple[int, ...]
    machine_loads: Tuple[int, ...]
    makespan: int


def lpt_schedule(
    durations: Sequence[int], num_machines: int
) -> LptResult:
    """Schedule ``durations`` on ``num_machines`` identical machines.

    Deterministic: ties in duration keep input order; ties in load go
    to the lowest machine index.

    >>> lpt_schedule([7, 5, 3, 2], 2).makespan
    9
    """
    if num_machines < 1:
        raise ConfigurationError(
            f"num_machines must be >= 1, got {num_machines}"
        )
    for duration in durations:
        if duration < 0:
            raise ConfigurationError(f"negative duration {duration}")

    assignment = [0] * len(durations)
    loads = [0] * num_machines
    order = sorted(
        range(len(durations)),
        key=lambda index: durations[index],
        reverse=True,
    )
    for job in order:
        machine = min(range(num_machines), key=lambda m: (loads[m], m))
        assignment[job] = machine
        loads[machine] += durations[job]
    return LptResult(
        assignment=tuple(assignment),
        machine_loads=tuple(loads),
        makespan=max(loads) if loads else 0,
    )


def graham_bound(num_machines: int) -> float:
    """Worst-case LPT/OPT makespan ratio: ``4/3 - 1/(3m)``."""
    if num_machines < 1:
        raise ConfigurationError(
            f"num_machines must be >= 1, got {num_machines}"
        )
    return 4.0 / 3.0 - 1.0 / (3.0 * num_machines)
