"""repro — wrapper/TAM co-optimization for core-based SOCs.

A production-quality reproduction of:

    Vikram Iyengar, Krishnendu Chakrabarty, Erik Jan Marinissen,
    "Efficient Wrapper/TAM Co-Optimization for Large SOCs", DATE 2002.

Quickstart
----------
>>> from repro import co_optimize
>>> from repro.soc.data import get_benchmark
>>> soc = get_benchmark("d695")
>>> result = co_optimize(soc, total_width=32)
>>> result.testing_time > 0
True

Layered API (bottom-up, matching the paper's problem progression):

* **P_W** — :func:`repro.wrapper.design_wrapper`,
  :class:`repro.wrapper.TimeTable`;
* **P_AW** — :func:`repro.assign.core_assign` (heuristic, Fig. 1),
  :func:`repro.assign.exact_assign` (exact branch-and-bound),
  :func:`repro.assign.solve_paw_ilp` (the literal ILP of [8]);
* **P_PAW / P_NPAW** — :func:`repro.partition.partition_evaluate`
  (Fig. 3), :func:`repro.optimize.co_optimize` (the full method),
  :func:`repro.optimize.exhaustive_optimize` (the [8] baseline);
* **sweeps at scale** — :class:`repro.engine.WrapperTableCache`
  (build each core's time table once, share it everywhere) and
  :class:`repro.engine.BatchRunner` (parallel (SOC, W, B) grids over
  a process pool);
* **the canonical job spec** — :class:`repro.api.OptimizeSpec` and
  :class:`repro.api.GridSpec`, the typed, schema-versioned,
  content-hashable description of a job shared by ``co_optimize``,
  the batch engine, the exploration service and the CLI.
"""

import logging as _logging

from repro.api import GridSpec, OptimizeSpec
from repro.soc.core import Core
from repro.soc.soc import Soc
from repro.wrapper.design import design_wrapper
from repro.wrapper.pareto import TimeTable, build_time_tables
from repro.wrapper.simulate import simulate_wrapper_test
from repro.assign.core_assign import core_assign
from repro.assign.exact import exact_assign
from repro.partition.evaluate import partition_evaluate
from repro.optimize.co_optimize import co_optimize
from repro.optimize.exhaustive import exhaustive_optimize
from repro.analysis.certificates import certify
from repro.analysis.utilization import analyze_utilization
from repro.engine import BatchJob, BatchRunner, WrapperTableCache
from repro.tam.bus import TamArchitecture
from repro.tam.assignment import AssignmentResult

# Library logging hygiene: the package logs through the standard
# hierarchy and stays silent unless the application configures
# handlers (CLI entry points wire basicConfig via --log-level).
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

__version__ = "1.0.0"

__all__ = [
    "Core",
    "Soc",
    "design_wrapper",
    "TimeTable",
    "build_time_tables",
    "simulate_wrapper_test",
    "core_assign",
    "exact_assign",
    "partition_evaluate",
    "co_optimize",
    "exhaustive_optimize",
    "certify",
    "analyze_utilization",
    "WrapperTableCache",
    "BatchJob",
    "BatchRunner",
    "GridSpec",
    "OptimizeSpec",
    "TamArchitecture",
    "AssignmentResult",
    "__version__",
]
