"""Top-level wrapper/TAM co-optimization pipelines.

* :func:`~repro.optimize.co_optimize.co_optimize` — the paper's
  two-step method: ``Partition_evaluate`` (fast heuristic sweep over
  partitions and TAM counts) followed by one exact P_AW solve on the
  winning partition;
* :func:`~repro.optimize.exhaustive.exhaustive_optimize` — the
  baseline of [8]: exact P_AW for *every* partition (the comparison
  column in the paper's results tables);
* :mod:`~repro.optimize.result` — result records shared by both.
"""

from repro.optimize.co_optimize import co_optimize
from repro.optimize.exhaustive import exhaustive_optimize
from repro.optimize.result import (
    CoOptimizationResult,
    ExhaustiveResult,
    percent_delta,
)

__all__ = [
    "co_optimize",
    "exhaustive_optimize",
    "CoOptimizationResult",
    "ExhaustiveResult",
    "percent_delta",
]
