"""The paper's two-step wrapper/TAM co-optimization method.

Step 1 — ``Partition_evaluate``: enumerate width partitions over the
requested TAM counts, scoring each with the O(N²) ``Core_assign``
heuristic under the shared incumbent abort.  This lands "within the
neighborhood of the optimal solution" in seconds.

Step 2 — final optimization: run the exact P_AW solver *once*, on the
winning partition, warm-started with the heuristic assignment.  The
partition is frozen; only the core assignment can change.  This is
the paper's use of the ILP model of [8], implemented here by the
dedicated branch-and-bound (use ``repro.assign.ilp_model`` for the
literal ILP).

The paper documents an anomaly this structure inherits: because step
1 is heuristic, the partition it selects is not always the partition
with the lowest *post-polish* time (Section 4.2's W=16 example).  The
anomaly is reproduced — and tested — rather than papered over.
"""

from __future__ import annotations

import time as _time
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api.specs import (
    DEFAULT_MAX_TAMS,
    OptimizeSpec,
    resolved_tam_counts,
)
from repro.assign.exact import ExactResult, exact_assign
from repro.exceptions import ConfigurationError
from repro.obs import span as _obs_span
from repro.optimize.result import CoOptimizationResult
from repro.partition.evaluate import (
    PartitionSearchResult,
    partition_evaluate,
)
from repro.soc.soc import Soc
from repro.tam.assignment import AssignmentResult
from repro.wrapper.pareto import TimeTable, build_time_tables

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.kernel import DenseTimeMatrix

__all__ = [
    "DEFAULT_MAX_TAMS",
    "PolishTask",
    "co_optimize",
    "run_polish_task",
]

#: One exact-polish solve, fully described and picklable: the
#: candidate's per-core times at its widths, the candidate itself
#: (widths + warm-start assignment), and the solve budgets.  The unit
#: a ``polish_runner`` dispatches to pool workers.
PolishTask = Tuple[
    List[List[int]], AssignmentResult, int, float
]

#: The polish fan-out seam: called with every candidate's task, must
#: return their :class:`~repro.assign.exact.ExactResult` s *in task
#: order* — the order the parent's first-strict-minimum reduction
#: assumes.  Tasks are independent (the serial loop never threads one
#: candidate's solution into the next solve), so any execution
#: placement reproduces the serial result bit for bit.
PolishRunner = Callable[[Sequence[PolishTask]], List[ExactResult]]


def run_polish_task(task: PolishTask) -> ExactResult:
    """Execute one polish task — the worker side of the seam."""
    times, candidate, node_limit, time_limit = task
    return exact_assign(
        times,
        candidate.widths,
        incumbent=candidate,
        node_limit=node_limit,
        time_limit=time_limit,
    )


def co_optimize(
    soc: Soc,
    total_width: Optional[int] = None,
    num_tams: Union[int, Iterable[int], None] = None,
    enumerator: str = "unique",
    polish: bool = True,
    polish_top_k: int = 1,
    polish_per_tam_count: bool = False,
    exact_node_limit: int = 2_000_000,
    exact_time_limit: float = 30.0,
    tables: Optional[Dict[str, TimeTable]] = None,
    prune: Union[bool, str] = True,
    sweep_engine: str = "kernel",
    dense: "Optional[DenseTimeMatrix]" = None,
    spec: Optional[OptimizeSpec] = None,
    sweep: Optional[Callable[..., "PartitionSearchResult"]] = None,
    polish_runner: Optional[PolishRunner] = None,
) -> CoOptimizationResult:
    """Co-optimize the wrapper/TAM architecture of ``soc``.

    The canonical configuration is a :class:`repro.api.OptimizeSpec`
    passed as ``spec`` — one typed, hashable object shared with the
    batch engine, the exploration service and the CLI.  The loose
    keyword form below is kept as a compatibility shim: it simply
    builds the same spec internally, and new options are added to
    :class:`~repro.api.specs.OptimizeSpec` first.

    Parameters
    ----------
    soc:
        The SOC to optimize.
    spec:
        The typed job description.  Mutually exclusive with
        ``total_width`` (and the other spec-covered keywords, whose
        values are ignored when a spec is given).
    total_width:
        Total TAM width ``W`` available at the SOC pins.
    num_tams:
        A single TAM count (problem P_PAW), an iterable of counts, or
        ``None`` for the paper's P_NPAW default ``range(1, 11)``
        (capped at ``total_width``).
    enumerator:
        Partition enumerator: ``"unique"`` or ``"increment"``.
    polish:
        When False, skip the exact final step and return the heuristic
        assignment (useful to measure the polish's contribution).
    polish_top_k:
        How many of ``Partition_evaluate``'s best distinct partitions
        to polish exactly.  1 is the paper's method.  Larger values
        mitigate the anomaly the paper documents in its conclusion:
        the heuristically-best partition is not always the best after
        exact optimization, so polishing the runners-up and keeping
        the overall winner can only improve the result (at k times
        the polish cost and a slightly slower sweep).
    polish_per_tam_count:
        When True, the sweep keeps the best partition of *every* TAM
        count and the polish visits each of them.  This targets the
        anomaly's usual form — the heuristic picking the wrong number
        of TAMs — at the cost of weaker cross-B pruning during the
        sweep.  Composable with ``polish_top_k`` (top-k per B).
    exact_node_limit / exact_time_limit:
        Budgets for each exact solve.
    tables:
        Pre-built wrapper time tables (core name → table covering
        widths up to at least ``total_width``), e.g. from a
        :class:`repro.engine.WrapperTableCache`.  When ``None`` the
        tables are built here.  Either way the tables actually used
        are exposed on the result, so downstream consumers
        (certificates, utilization, sweeps) never rebuild them.
    prune:
        Partition-sweep pruning mode, forwarded to
        :func:`~repro.partition.evaluate.partition_evaluate`:
        ``True`` (default) is the paper's best-known-time abort;
        ``"lb"`` adds the dense kernel's outcome-identical lower-bound
        skip (what the engine/service paths run with); ``False``
        disables pruning for ablations.
    sweep_engine:
        ``"kernel"`` (default) or ``"legacy"`` — the partition
        sweep's execution engine; outcomes are bit-identical.
    dense:
        Optional pre-built :class:`~repro.engine.kernel.
        DenseTimeMatrix` for the kernel sweep (e.g. attached from the
        batch engine's shared-memory transport).
    sweep:
        Optional replacement for :func:`~repro.partition.evaluate.
        partition_evaluate` — called with the identical signature and
        required to return an outcome-identical
        :class:`~repro.partition.evaluate.PartitionSearchResult`.
        This is the seam the batch engine's intra-job sharding plugs
        into (:mod:`repro.partition.shard`): step 1 fans out across
        the pool, while step 2 (the exact polish) and the result
        assembly stay right here.  An execution hint, not part of the
        job's canonical content.
    polish_runner:
        Optional executor for step 2's per-candidate exact solves
        (:data:`PolishTask` in, :class:`~repro.assign.exact.
        ExactResult` out, task order preserved) — the seam the batch
        engine uses to fan a ``polish_top_k > 1`` polish across its
        pool.  Only consulted when there are two or more candidates;
        like ``sweep``, an execution hint with a bit-identical
        result.

    Returns
    -------
    :class:`~repro.optimize.result.CoOptimizationResult`
    """
    if spec is None:
        if total_width is None:
            raise ConfigurationError(
                "co_optimize needs either total_width or spec="
            )
        # The legacy keyword surface is a shim over the canonical
        # spec: building it here gives every caller the same
        # validation and the same canonical content.
        spec = OptimizeSpec(
            total_width=total_width,
            num_tams=num_tams,
            enumerator=enumerator,
            polish=polish,
            polish_top_k=polish_top_k,
            polish_per_tam_count=polish_per_tam_count,
            exact_node_limit=exact_node_limit,
            exact_time_limit=exact_time_limit,
            prune=prune,
            sweep_engine=sweep_engine,
        )
    elif total_width is not None:
        raise ConfigurationError(
            "pass either total_width or spec=, not both"
        )
    total_width = spec.total_width
    counts = resolved_tam_counts(total_width, spec.num_tams)

    start = _time.monotonic()
    if tables is None:
        with _obs_span("build_tables", soc=soc.name, W=total_width):
            tables = build_time_tables(soc, total_width)
    table_list = [tables[core.name] for core in soc.cores]

    search_fn = sweep if sweep is not None else partition_evaluate
    with _obs_span(
        "partition_sweep", soc=soc.name, W=total_width
    ) as sweep_span:
        search = search_fn(
            table_list,
            total_width,
            counts,
            enumerator=spec.enumerator,
            # spec.prune None = "surface default", which here is the
            # paper's best-known-time abort.
            prune=spec.prune if spec.prune is not None else True,
            keep_top=spec.polish_top_k if spec.polish else 1,
            stratify_by_tam_count=(
                spec.polish and spec.polish_per_tam_count
            ),
            engine=spec.sweep_engine,
            dense=dense,
        )
        sweep_span.annotate(best_time=search.best.testing_time)

    final = search.best
    final_optimal = False
    if spec.polish:
        candidates = (search.best,) + search.runners_up
        if not spec.polish_per_tam_count:
            candidates = candidates[:spec.polish_top_k]
        tasks: List[PolishTask] = [
            (
                [
                    [table.time(width) for width in candidate.widths]
                    for table in table_list
                ],
                candidate,
                spec.exact_node_limit,
                spec.exact_time_limit,
            )
            for candidate in candidates
        ]
        with _obs_span("polish", candidates=len(candidates)):
            if polish_runner is not None and len(tasks) > 1:
                exacts = polish_runner(tasks)
            else:
                exacts = [run_polish_task(task) for task in tasks]
        # First strict minimum in candidate order — identical whether
        # the tasks ran serially here or through a polish runner.
        best_polished = None
        best_optimal = False
        for exact in exacts:
            if (best_polished is None
                    or exact.result.testing_time
                    < best_polished.testing_time):
                best_polished = exact.result
                best_optimal = exact.optimal
        assert best_polished is not None
        final = best_polished
        final_optimal = best_optimal

    return CoOptimizationResult(
        soc_name=soc.name,
        total_width=total_width,
        search=search,
        final=final,
        final_optimal=final_optimal,
        elapsed_seconds=_time.monotonic() - start,
        tables=tables,
    )
