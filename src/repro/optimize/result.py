"""Result records for the co-optimization pipelines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.partition.evaluate import PartitionSearchResult
from repro.tam.assignment import AssignmentResult
from repro.wrapper.pareto import TimeTable


def percent_delta(new_time: float, old_time: float) -> float:
    """The paper's  ΔT(%) = (T_new - T_old) / T_old * 100."""
    if old_time <= 0:
        raise ValueError(f"old_time must be positive, got {old_time}")
    return (new_time - old_time) / old_time * 100.0


@dataclass(frozen=True)
class CoOptimizationResult:
    """Outcome of the paper's two-step co-optimization method.

    ``search`` is the heuristic sweep (``Partition_evaluate``);
    ``final`` is the assignment after the exact polish on the winning
    partition.  ``final.testing_time <= search.testing_time`` always —
    the polish can only improve the core assignment.

    ``tables`` holds the wrapper time tables the run used (core name
    → :class:`~repro.wrapper.pareto.TimeTable`), so downstream
    analysis (certificates, utilization, sweeps) reuses them instead
    of re-running ``Design_wrapper``.  It is excluded from equality
    and ``repr`` — two runs are the same result regardless of which
    cache served their tables.
    """

    soc_name: str
    total_width: int
    search: PartitionSearchResult
    final: AssignmentResult
    final_optimal: bool
    elapsed_seconds: float
    tables: Optional[Dict[str, TimeTable]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def testing_time(self) -> int:
        return self.final.testing_time

    @property
    def partition(self) -> Tuple[int, ...]:
        return self.final.widths

    @property
    def num_tams(self) -> int:
        return len(self.final.widths)

    def summary(self) -> str:
        """One-line result in the paper's reporting style."""
        return (
            f"{self.soc_name} W={self.total_width}: "
            f"B={self.num_tams}, partition "
            f"{'+'.join(str(w) for w in self.partition)}, "
            f"T={self.testing_time} cycles "
            f"({self.elapsed_seconds:.2f}s)"
        )


@dataclass(frozen=True)
class ExhaustiveResult:
    """Outcome of the [8]-style exhaustive enumeration baseline.

    ``complete`` is False when the run stopped on its total time
    budget before covering every partition — mirroring the paper's
    reports that the exhaustive method "did not run to completion
    even after two days" on the larger instances.
    """

    soc_name: str
    total_width: int
    best: AssignmentResult
    partitions_evaluated: int
    partitions_total: int
    all_exact: bool
    complete: bool
    elapsed_seconds: float

    @property
    def testing_time(self) -> int:
        return self.best.testing_time

    @property
    def partition(self) -> Tuple[int, ...]:
        return self.best.widths

    def summary(self) -> str:
        """One-line result in the paper's reporting style."""
        status = "complete" if self.complete else (
            f"STOPPED after {self.partitions_evaluated}"
            f"/{self.partitions_total} partitions"
        )
        return (
            f"{self.soc_name} W={self.total_width} exhaustive: "
            f"partition {'+'.join(str(w) for w in self.partition)}, "
            f"T={self.testing_time} cycles, {status} "
            f"({self.elapsed_seconds:.2f}s)"
        )
