"""The exhaustive baseline of [8]: exact P_AW for every partition.

For each TAM count and each unique width partition, solve the core
assignment exactly and keep the global best.  This is the method the
paper improves on; every results table quotes it in the "Results in
[8]" columns.  Its cost is partitions x exact-solve — which is why
the paper reports it failing to terminate for B >= 3 or 4 on the
Philips SOCs.  A total time budget reproduces that behaviour
gracefully: on expiry the best-so-far is returned with
``complete=False``.
"""

from __future__ import annotations

import time as _time
from typing import Dict, Iterable, Optional, Union

from repro.assign.exact import exact_assign
from repro.exceptions import ConfigurationError
from repro.optimize.result import ExhaustiveResult
from repro.partition.count import count_partitions
from repro.partition.enumerate import unique_partitions
from repro.soc.soc import Soc
from repro.tam.assignment import AssignmentResult
from repro.wrapper.pareto import TimeTable, build_time_tables


def exhaustive_optimize(
    soc: Soc,
    total_width: int,
    num_tams: Union[int, Iterable[int]],
    node_limit_per_partition: int = 2_000_000,
    time_limit_per_partition: float = 10.0,
    total_time_limit: float = 600.0,
    tables: Optional[Dict[str, TimeTable]] = None,
) -> ExhaustiveResult:
    """Run the [8]-style exhaustive enumeration.

    Parameters
    ----------
    soc / total_width:
        The instance, as for :func:`~repro.optimize.co_optimize.co_optimize`.
    num_tams:
        TAM count(s) to cover.
    node_limit_per_partition / time_limit_per_partition:
        Budgets for each exact solve; ``all_exact`` in the result
        reports whether every solve proved optimality.
    total_time_limit:
        Wall-clock budget for the whole enumeration (the "two days"
        guard).  On expiry the sweep stops with ``complete=False``.
    tables:
        Pre-built wrapper time tables covering widths up to
        ``total_width`` (e.g. from a
        :class:`repro.engine.WrapperTableCache`); built here when
        ``None``.
    """
    if total_width < 1:
        raise ConfigurationError(
            f"total_width must be >= 1, got {total_width}"
        )
    tam_counts = (
        [num_tams] if isinstance(num_tams, int) else list(num_tams)
    )
    if not tam_counts:
        raise ConfigurationError("num_tams iterable is empty")

    start = _time.monotonic()
    deadline = start + total_time_limit

    if tables is None:
        tables = build_time_tables(soc, total_width)
    table_list = [tables[core.name] for core in soc.cores]

    partitions_total = sum(
        count_partitions(total_width, count)
        for count in tam_counts
        if count <= total_width
    )

    best: Optional[AssignmentResult] = None
    evaluated = 0
    all_exact = True
    complete = True

    for count in tam_counts:
        if count > total_width:
            continue
        # Re-check the wall clock between TAM counts too: a count
        # whose enumeration finished exactly on budget must not admit
        # the next count's sweep.
        if _time.monotonic() > deadline:
            complete = False
            break
        for widths in unique_partitions(total_width, count):
            if _time.monotonic() > deadline:
                complete = False
                break
            times = [
                [table.time(width) for width in widths]
                for table in table_list
            ]
            exact = exact_assign(
                times,
                widths,
                node_limit=node_limit_per_partition,
                time_limit=time_limit_per_partition,
            )
            evaluated += 1
            all_exact = all_exact and exact.optimal
            if best is None or exact.result.testing_time < best.testing_time:
                best = exact.result
        if not complete:
            break

    if best is None:
        raise ConfigurationError(
            "exhaustive enumeration evaluated no partitions "
            f"(W={total_width}, B={tam_counts})"
        )
    return ExhaustiveResult(
        soc_name=soc.name,
        total_width=total_width,
        best=best,
        partitions_evaluated=evaluated,
        partitions_total=partitions_total,
        all_exact=all_exact,
        complete=complete,
        elapsed_seconds=_time.monotonic() - start,
    )
