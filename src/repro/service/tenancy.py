"""Multi-tenant policy for the exploration service.

PR 8 made the service survive crashes; this module makes it survive
*clients*.  Until it existed :class:`~repro.service.server.
ExplorationServer` was single-trust: any connection could submit
unbounded grids, fill the queue, and starve every other caller.  The
tenancy layer adds the three production primitives that fix that,
while keeping the anonymous single-trust mode the default (a bare
``ExplorationServer()`` behaves exactly as before):

* **Identity** — bearer tokens loaded from a ``tokens.json`` next to
  the cache directory (:class:`TokenRegistry`), compared in constant
  time, resolving to a :class:`ClientIdentity` with a priority class
  and a :class:`QuotaPolicy`;
* **Quotas** — per-client ceilings on queued jobs, concurrently
  running grid points, and grid size, enforced by the server's
  admission path with typed
  :class:`~repro.exceptions.QuotaExceededError` rejections;
* **Priority + overload** — an :class:`AdmissionQueue` that drains
  priority classes weighted-fair (smooth weighted round-robin, never
  starving ``low``) and, when bounded and full, sheds the
  lowest-priority queued work first so a typed
  :class:`~repro.exceptions.OverloadedError` with a ``retry_after``
  hint replaces a fallen-over server.

Nothing in this module touches result content: scheduling order,
quotas and identity are pure *execution* policy, so fixed-seed grids
stay bit-identical with tenancy enabled (asserted by
``tests/service/test_tenancy.py``).
"""

from __future__ import annotations

import hmac
import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.exceptions import ConfigurationError, UnauthorizedError

__all__ = [
    "ANONYMOUS_CLIENT",
    "AdmissionQueue",
    "ClientAccount",
    "ClientIdentity",
    "PRIORITIES",
    "PRIORITY_WEIGHTS",
    "QuotaPolicy",
    "TOKENS_NAME",
    "TokenRegistry",
]

#: File name of the token registry inside (next to) the cache dir.
TOKENS_NAME = "tokens.json"

#: Priority classes, best first.  The tuple order is the shedding
#: order reversed: under overload the *last* class loses first.
PRIORITIES: Tuple[str, ...] = ("high", "normal", "low")

#: Weighted-fair drain weights: out of every 7 dequeues under full
#: backlog, 4 are high, 2 normal, 1 low — low-priority work is slowed
#: under contention, never starved.
PRIORITY_WEIGHTS: Dict[str, int] = {"high": 4, "normal": 2, "low": 1}


def priority_rank(priority: str) -> int:
    """Position of ``priority`` in :data:`PRIORITIES` (0 = best)."""
    return PRIORITIES.index(priority)


def _validated_priority(priority: str, where: str) -> str:
    if priority not in PRIORITIES:
        raise ConfigurationError(
            f"{where}: priority must be one of {PRIORITIES}, "
            f"got {priority!r}"
        )
    return priority


def _optional_limit(value: Any, where: str) -> Optional[int]:
    """Validate a quota ceiling: ``None`` (unlimited) or int >= 1."""
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) \
            or value < 1:
        raise ConfigurationError(
            f"{where} must be an int >= 1 or null, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class QuotaPolicy:
    """Per-client admission ceilings; ``None`` means unlimited.

    ``max_queued_jobs`` bounds how many of the client's jobs may sit
    in the admission queue at once; ``max_concurrent_points`` caps
    how many grid points of one of its jobs the engine keeps in
    flight on the pool simultaneously (the fairness knob that stops
    one tenant's giant grid from monopolising every worker);
    ``max_grid_size`` bounds the number of points a single
    submission may carry.
    """

    max_queued_jobs: Optional[int] = None
    max_concurrent_points: Optional[int] = None
    max_grid_size: Optional[int] = None

    def __post_init__(self) -> None:
        for name in (
            "max_queued_jobs", "max_concurrent_points",
            "max_grid_size",
        ):
            object.__setattr__(
                self, name,
                _optional_limit(getattr(self, name), f"quota {name}"),
            )

    @classmethod
    def from_dict(cls, data: Any, where: str = "quota") -> "QuotaPolicy":
        """Build a policy from a ``tokens.json`` quota object."""
        if data is None:
            return cls()
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"{where} must be an object, got {type(data).__name__}"
            )
        unknown = sorted(
            set(data) - {
                "max_queued_jobs", "max_concurrent_points",
                "max_grid_size",
            }
        )
        if unknown:
            raise ConfigurationError(
                f"{where}: unknown quota field(s): {', '.join(unknown)}"
            )
        return cls(**data)

    def to_dict(self) -> Dict[str, Optional[int]]:
        """Plain-data form for ``info()`` gauges and docs."""
        return {
            "max_queued_jobs": self.max_queued_jobs,
            "max_concurrent_points": self.max_concurrent_points,
            "max_grid_size": self.max_grid_size,
        }


@dataclass(frozen=True)
class ClientIdentity:
    """Who a request runs as: name, priority class, and quota."""

    client_id: str
    priority: str = "normal"
    quota: QuotaPolicy = field(default_factory=QuotaPolicy)

    def __post_init__(self) -> None:
        if not isinstance(self.client_id, str) or not self.client_id:
            raise ConfigurationError(
                f"client_id must be a non-empty string, "
                f"got {self.client_id!r}"
            )
        _validated_priority(
            self.priority, f"client {self.client_id!r}"
        )

    def effective_priority(
        self, requested: Optional[str]
    ) -> str:
        """The priority a submission runs at.

        A client may *lower* its work below its class (a ``high``
        client can submit ``low`` housekeeping sweeps) but never
        raise it above — the registry, not the request, grants rank.
        """
        if requested is None:
            return self.priority
        requested = _validated_priority(requested, "request")
        if priority_rank(requested) < priority_rank(self.priority):
            raise UnauthorizedError(
                f"client {self.client_id!r} (class {self.priority}) "
                f"may not submit at priority {requested!r}"
            )
        return requested


#: The single-trust identity every request runs as when auth is off —
#: unlimited quota, normal priority, exactly the pre-tenancy service.
ANONYMOUS_CLIENT = ClientIdentity(client_id="anonymous")


class TokenRegistry:
    """Bearer-token → :class:`ClientIdentity` resolution.

    Loaded once from a ``tokens.json`` shaped like::

        {"clients": {
            "alice": {"token": "a1...", "priority": "high",
                       "quota": {"max_queued_jobs": 4}},
            "bot":   {"token": "b2...", "priority": "low"}
        }}

    ``priority`` defaults to ``normal`` and ``quota`` to unlimited.
    Lookup compares the presented token against every registered one
    with :func:`hmac.compare_digest` — constant-time per comparison,
    and every registered token is always compared, so timing reveals
    neither which byte diverged nor whether any client matched.
    """

    def __init__(self, clients: Dict[str, ClientIdentity]) -> None:
        self._by_token: Dict[str, ClientIdentity] = clients

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TokenRegistry":
        """Parse ``tokens.json``; raises on malformed registries.

        Unlike most service inputs this fails *hard*: a server that
        silently dropped a mistyped client entry would lock that
        tenant out while looking healthy.
        """
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as error:
            raise ConfigurationError(
                f"cannot read token registry {path}: {error}"
            ) from error
        except ValueError as error:
            raise ConfigurationError(
                f"token registry {path} is not valid JSON: {error}"
            ) from error
        if not isinstance(data, dict) \
                or not isinstance(data.get("clients"), dict):
            raise ConfigurationError(
                f"token registry {path} needs a 'clients' object"
            )
        by_token: Dict[str, ClientIdentity] = {}
        for name, entry in sorted(data["clients"].items()):
            if not isinstance(entry, dict):
                raise ConfigurationError(
                    f"token registry client {name!r} must be an object"
                )
            unknown = sorted(
                set(entry) - {"token", "priority", "quota"}
            )
            if unknown:
                raise ConfigurationError(
                    f"token registry client {name!r}: unknown "
                    f"field(s): {', '.join(unknown)}"
                )
            token = entry.get("token")
            if not isinstance(token, str) or not token:
                raise ConfigurationError(
                    f"token registry client {name!r} needs a "
                    f"non-empty string 'token'"
                )
            if token in by_token:
                raise ConfigurationError(
                    f"token registry client {name!r} reuses another "
                    f"client's token"
                )
            by_token[token] = ClientIdentity(
                client_id=str(name),
                priority=entry.get("priority", "normal"),
                quota=QuotaPolicy.from_dict(
                    entry.get("quota"),
                    where=f"client {name!r} quota",
                ),
            )
        return cls(by_token)

    def __len__(self) -> int:
        return len(self._by_token)

    def identity_for(self, client_id: str) -> Optional[ClientIdentity]:
        """The registered identity named ``client_id``, if any.

        Name lookup, not authentication — used by journal replay to
        reattach recovered work to a client's *current* registry
        entry (so quota edits between restarts apply).
        """
        for identity in self._by_token.values():
            if identity.client_id == client_id:
                return identity
        return None

    def authenticate(self, token: Optional[str]) -> ClientIdentity:
        """Resolve ``token``; raises :class:`UnauthorizedError`.

        Every registered token is compared (no early exit on match),
        so the call's timing is independent of which — if any —
        client the presented token belongs to.
        """
        if not token:
            raise UnauthorizedError(
                "this server requires a bearer token "
                "(submit with --token / ServiceClient(token=...))"
            )
        presented = token.encode("utf-8")
        matched: Optional[ClientIdentity] = None
        for registered, identity in self._by_token.items():
            if hmac.compare_digest(
                registered.encode("utf-8"), presented
            ):
                matched = identity
        if matched is None:
            raise UnauthorizedError("unknown bearer token")
        return matched


@dataclass
class ClientAccount:
    """One client's live accounting — the ``info()`` per-client block.

    Mutated only under the server lock.  ``queued``/``running`` are
    gauges rebuilt from the journal on restart; the rest are
    monotonic counters for this server process.
    """

    identity: ClientIdentity
    queued: int = 0
    running: int = 0
    submitted: int = 0
    done: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected_unauthorized: int = 0
    rejected_quota: int = 0
    rejected_overload: int = 0
    shed: int = 0

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data form for ``info()['clients']``."""
        return {
            "priority": self.identity.priority,
            "quota": self.identity.quota.to_dict(),
            "queued": self.queued,
            "running": self.running,
            "submitted": self.submitted,
            "done": self.done,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "rejected": {
                "unauthorized": self.rejected_unauthorized,
                "over_quota": self.rejected_quota,
                "overloaded": self.rejected_overload,
            },
            "shed": self.shed,
        }


class AdmissionQueue:
    """Bounded, priority-classed admission queue with fair drain.

    Replaces the dispatcher's FIFO ``queue.Queue``: entries are
    ``(job_id, priority)`` pairs held in per-class FIFO lists and
    drained by *smooth weighted round-robin* over
    :data:`PRIORITY_WEIGHTS` — each :meth:`pop` adds every non-empty
    class's weight to its credit, serves the class with the highest
    credit, and charges it the total active weight.  Under a full
    backlog the long-run service ratio converges to the weights
    (4:2:1) while staying deterministic and burst-free; an idle class
    costs nothing.

    ``max_depth`` bounds the total queued entries.  The queue itself
    never rejects — :meth:`shed_candidate` tells the admission
    controller which queued job would be sacrificed for an incoming
    one, and :meth:`remove` executes the eviction (also used by
    cancellation, so stale ids never linger and depth stays exact).
    """

    def __init__(self, max_depth: Optional[int] = None) -> None:
        if max_depth is not None and max_depth < 1:
            raise ConfigurationError(
                f"max_depth must be >= 1 or None, got {max_depth}"
            )
        self.max_depth = max_depth
        self._classes: Dict[str, List[str]] = {
            priority: [] for priority in PRIORITIES
        }
        self._credit: Dict[str, int] = {
            priority: 0 for priority in PRIORITIES
        }
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)

    def depth(self) -> int:
        """Total queued entries across every class."""
        with self._lock:
            return sum(len(jobs) for jobs in self._classes.values())

    def is_full(self) -> bool:
        """Whether admission would exceed ``max_depth``."""
        if self.max_depth is None:
            return False
        return self.depth() >= self.max_depth

    def push(self, job_id: str, priority: str) -> None:
        """Enqueue one admitted job (caller already checked bounds)."""
        _validated_priority(priority, "admission queue")
        with self._ready:
            self._classes[priority].append(job_id)
            self._ready.notify()

    def shed_candidate(
        self, incoming_priority: str
    ) -> Optional[Tuple[str, str]]:
        """The queued ``(job_id, priority)`` to shed for an arrival.

        Lowest-priority class first, and within the class the
        *newest* entry — the oldest queued job has waited longest and
        wasted most by being dropped.  Only work in a class strictly
        worse than ``incoming_priority`` is sacrificed: an arrival
        never sheds its equals, so a saturated class cannot churn
        itself.  ``None`` means the incoming request is the loser.
        """
        incoming_rank = priority_rank(incoming_priority)
        with self._lock:
            for priority in reversed(PRIORITIES):
                if priority_rank(priority) <= incoming_rank:
                    return None
                jobs = self._classes[priority]
                if jobs:
                    return jobs[-1], priority
        return None

    def remove(self, job_id: str, priority: str) -> bool:
        """Drop a queued entry (shed or cancelled); False if absent."""
        with self._lock:
            jobs = self._classes[priority]
            try:
                jobs.remove(job_id)
            except ValueError:
                return False
            return True

    def pop(self, timeout: Optional[float] = None) -> Optional[str]:
        """Dequeue the next job id, weighted-fair; None on timeout."""
        with self._ready:
            if not self._wait_nonempty(timeout):
                return None
            active = [
                priority for priority in PRIORITIES
                if self._classes[priority]
            ]
            total = sum(
                PRIORITY_WEIGHTS[priority] for priority in active
            )
            for priority in active:
                self._credit[priority] += PRIORITY_WEIGHTS[priority]
            # Highest credit wins; PRIORITIES order breaks ties so
            # equal-credit rounds favor the better class.
            chosen = max(
                active, key=lambda priority: (
                    self._credit[priority],
                    -priority_rank(priority),
                ),
            )
            self._credit[chosen] -= total
            return self._classes[chosen].pop(0)

    def _wait_nonempty(self, timeout: Optional[float]) -> bool:
        """Await an entry under the lock; False when ``timeout`` hits."""
        return self._ready.wait_for(
            lambda: any(
                self._classes[priority] for priority in PRIORITIES
            ),
            timeout=timeout,
        )
