"""On-disk persistence of wrapper time tables.

``Design_wrapper`` is the pipeline's only expensive primitive, and
its outputs depend on nothing but a core's scan/IO structure — the
perfect memoization target.  :class:`TableStore` persists each core's
Pareto-compressed :class:`~repro.wrapper.pareto.TimeTable` staircase
as one JSON file per *content hash* (:func:`repro.soc.fingerprint.
core_fingerprint`), so repeated CLI invocations, benchmark runs and
service restarts skip wrapper design entirely once a core has been
tabulated at a sufficient width.

Layout and semantics:

* ``<directory>/<fingerprint>.json`` — one record per distinct core
  structure, in the :func:`repro.report.serialize.time_table_to_dict`
  format.  Identically-structured cores (common in synthesized SOCs)
  share a single entry; core *names* never appear in the key.
* **Invalidation is automatic**: editing a core's patterns, terminals
  or scan chains changes its fingerprint, so the next lookup simply
  misses (the stale entry is ignored, not served).  Bumping
  :data:`repro.soc.fingerprint.ALGORITHM_VERSION` invalidates every
  entry at once.
* **Extend-in-place**: a stored table covering width ``w`` answers a
  request for ``w' > w`` by paying only the ``w' - w`` missing
  designs, mirroring :meth:`repro.engine.cache.WrapperTableCache.
  ensure`; :meth:`TableStore.save` then widens the record (and never
  narrows it — concurrent writers can only grow coverage).
* Unreadable, corrupt or mismatching records are treated as misses,
  never as errors: the store is a cache, the builder is the truth.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

try:  # POSIX-only; the store degrades to lock-free elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.engine.faults import FaultPlan
from repro.obs import REGISTRY
from repro.report.serialize import (
    SCHEMA_VERSION,
    grid_memo_from_dict,
    grid_memo_to_dict,
    time_table_from_dict,
    time_table_to_dict,
    to_json,
)
from repro.soc.core import Core
from repro.soc.fingerprint import core_fingerprint
from repro.soc.soc import Soc
from repro.wrapper.pareto import TimeTable

logger = logging.getLogger(__name__)


def _quarantine(path: Path, reason: str) -> None:
    """Move a record that failed validation out of the lookup path.

    The entry is renamed to ``<name>.bad`` (replacing any previous
    quarantined copy) rather than deleted: the next lookup misses and
    rebuilds, while the damaged bytes stay on disk for forensics.
    Counted under ``store.quarantined`` so the service health block
    can surface silent corruption.
    """
    target = path.with_name(path.name + ".bad")
    try:
        os.replace(path, target)
    except OSError:
        return  # a racing reader already moved or removed it
    logger.warning(
        "quarantined corrupt store entry %s -> %s (%s)",
        path.name, target.name, reason,
    )
    REGISTRY.counter("store.quarantined").inc()


def _corrupt_write_requested() -> bool:
    """Fault hook: should this store write be truncated mid-record?

    Only ever True under an explicit ``REPRO_FAULTS`` plan with a
    ``corrupt`` directive (one-shot, claimed through the plan's state
    directory) — production writes never take this branch.
    """
    plan = FaultPlan.from_env()
    return plan is not None and plan.take_corrupt_write()


class TableStore:
    """A directory of persisted per-core time tables.

    Parameters
    ----------
    directory:
        Where the ``<fingerprint>.json`` records live.  Created on
        first use (including parents); safe to point several
        processes at concurrently — writes are atomic renames and
        never narrow an existing record.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        #: Widths known to be on disk, per fingerprint — a same-process
        #: fast path so repeated saves don't re-parse existing records.
        #: Never trusted to *skip* growth checks under the write lock.
        self._known_widths: Dict[str, int] = {}

    def path_for(self, core: Core) -> Path:
        """The record path serving ``core`` (existing or not)."""
        return self.directory / f"{core_fingerprint(core)}.json"

    @contextlib.contextmanager
    def _write_lock(self) -> Iterator[None]:
        """Serialize same-machine writers (no-op where flock is absent).

        Makes :meth:`save`'s check-then-replace atomic across
        processes sharing this directory, so a narrower writer can
        never clobber a wider record it raced with.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        handle = os.open(
            self.directory / ".lock", os.O_CREAT | os.O_RDWR, 0o644
        )
        try:
            fcntl.flock(handle, fcntl.LOCK_EX)
            yield
        finally:
            os.close(handle)  # closing drops the flock

    def load(self, core: Core) -> Optional[TimeTable]:
        """The stored table for ``core``'s structure, or ``None``.

        Misses on: absent record, unreadable/corrupt JSON, schema or
        fingerprint mismatch, or an invalid staircase.  Never raises
        for bad cache contents — the caller falls back to building.
        A record that *exists* but fails validation is deleted, so a
        bad header can never block :meth:`save` from repairing the
        entry with a freshly built table.
        """
        path = self.path_for(core)
        try:
            data = json.loads(path.read_text())
        except OSError:
            return None
        except ValueError:
            self._discard(path, core_fingerprint(core),
                          "undecodable JSON")
            return None
        try:
            table = time_table_from_dict(data, core)
        except Exception as error:
            self._discard(path, core_fingerprint(core),
                          f"invalid record: {error}")
            return None
        fingerprint = core_fingerprint(core)
        self._known_widths[fingerprint] = max(
            self._known_widths.get(fingerprint, 0), table.max_width
        )
        return table

    def save(self, table: TimeTable) -> bool:
        """Persist ``table``, widening its record if needed.

        Returns True when a record was written, False when the
        existing record already covers ``table.max_width`` (saving a
        narrower table never clobbers a wider one — the growth check
        and the replace happen under one cross-process write lock,
        so racing workers can only grow the store).  Directory
        creation is lazy: a store is free until something is worth
        keeping.
        """
        fingerprint = core_fingerprint(table.core)
        # Same-process fast path: a width we have already seen on
        # disk can only have grown since.
        if self._known_widths.get(fingerprint, -1) >= table.max_width:
            return False
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(table.core)
        with self._write_lock():
            existing = self.stored_width(table.core)
            if existing >= table.max_width:
                return False
            payload = to_json(time_table_to_dict(table))
            if _corrupt_write_requested():
                payload = payload[: max(1, len(payload) // 2)]
            # Atomic publish: concurrent readers see the old record
            # or the new one, never a torn write.
            handle, tmp_name = tempfile.mkstemp(
                dir=self.directory, suffix=".tmp"
            )
            try:
                with os.fdopen(handle, "w") as tmp:
                    tmp.write(payload)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            self._known_widths[fingerprint] = table.max_width
        return True

    def _discard(
        self, path: Path, fingerprint: str, reason: str
    ) -> None:
        """Quarantine a record that failed validation."""
        _quarantine(path, reason)
        self._known_widths.pop(fingerprint, None)

    def stored_width(self, core: Core) -> int:
        """Width the stored record covers for ``core`` (0 on miss).

        Reads the record header without reconstructing designs, so
        callers can decide whether a save would widen anything.
        Header-only by design: a record with a healthy header but a
        body :meth:`load` rejects is removed *by load*, so this check
        can never leave the store permanently cold.
        """
        path = self.path_for(core)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return 0
        if (
            not isinstance(data, dict)
            or data.get("schema") != SCHEMA_VERSION
            or data.get("kind") != "time_table"
            or data.get("fingerprint") != core_fingerprint(core)
        ):
            return 0
        width = data.get("max_width")
        if not isinstance(width, int) or width < 1:
            return 0
        fingerprint = core_fingerprint(core)
        self._known_widths[fingerprint] = max(
            self._known_widths.get(fingerprint, 0), width
        )
        return width

    def fetch(self, core: Core, max_width: int) -> TimeTable:
        """Load-or-build ``core``'s table covering ``max_width``.

        The convenience one-shot: a hit wide enough is returned as
        is; a narrower hit is extended in place (paying only the
        missing widths) and re-persisted; a miss builds fresh and
        persists.  Heavy consumers should prefer a store-backed
        :class:`repro.engine.cache.WrapperTableCache`, which adds the
        in-memory sharing layer on top of this.
        """
        table = self.load(core)
        if table is None:
            table = TimeTable(core, max_width)
            self.save(table)
        elif table.max_width < max_width:
            table.extend_to(max_width)
            self.save(table)
        return table

    def tables(self, soc: Soc, max_width: int) -> Dict[str, TimeTable]:
        """Core-name → table dict for ``soc`` via :meth:`fetch`."""
        return {
            core.name: self.fetch(core, max_width)
            for core in soc.cores
        }

    def entries(self) -> List[Path]:
        """Paths of every record currently in the store."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.json"))

    def __len__(self) -> int:
        return len(self.entries())

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self._known_widths.clear()
        return removed


class GridMemo:
    """On-disk memoization of finished exploration grids.

    The exploration server's in-memory memo answers identical
    re-submissions within one process; this store is the cross-restart
    half of that contract (ROADMAP: "memo persisted next to the table
    store").  One ``<canonical_key>.json`` per completed clean grid —
    the key is :meth:`repro.api.GridSpec.canonical_key`, a content
    hash over SOC fingerprints and normalized options, so it is
    identical across processes, protocol versions and CLI surfaces.

    Same cache discipline as :class:`TableStore`: unreadable, corrupt
    or key-mismatching records are misses, never errors; writes are
    atomic renames; entries hold *serialized* results (the exact
    ``points``/``failures`` payload the IPC ``result`` op returns),
    so serving one costs no object reconstruction.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)

    def path_for(self, key: str) -> Path:
        """The record path serving canonical ``key``."""
        return self.directory / f"{key}.json"

    def load(self, key: str) -> Optional[Dict[str, object]]:
        """The stored payload for ``key``, or ``None`` on any miss.

        A record written by a *newer* build (unknown schema version)
        is a miss but is left on disk — a rolled-back server must
        never destroy entries the newer build can still serve.  Only
        records this build positively identifies as corrupt or
        mismatched are removed.
        """
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text())
        except OSError:
            return None
        except ValueError:
            self._discard(path, "undecodable JSON")
            return None
        if isinstance(data, dict) \
                and data.get("schema") != SCHEMA_VERSION:
            return None
        try:
            return grid_memo_from_dict(data, key)
        except Exception as error:
            self._discard(path, f"invalid record: {error}")
            return None

    def _discard(self, path: Path, reason: str) -> None:
        """Quarantine a record this build knows is bad."""
        _quarantine(path, reason)

    def save(
        self, key: str, payload: Dict[str, object], num_jobs: int
    ) -> bool:
        """Persist a finished grid's payload under ``key``.

        Atomic publish (temp file + rename), idempotent — a key
        already present is simply rewritten with identical content
        (the pipeline is deterministic).  Returns False when the
        write failed; persistence is best-effort and never takes a
        finished grid down with it.
        """
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            record = to_json(grid_memo_to_dict(key, payload, num_jobs))
            handle, tmp_name = tempfile.mkstemp(
                dir=self.directory, suffix=".tmp"
            )
            try:
                with os.fdopen(handle, "w") as tmp:
                    tmp.write(record)
                os.replace(tmp_name, self.path_for(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True

    def entries(self) -> List[Path]:
        """Paths of every memo record currently on disk."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.json"))

    def __len__(self) -> int:
        return len(self.entries())

    def clear(self) -> int:
        """Delete every memo record; returns how many were removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
