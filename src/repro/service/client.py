"""Python client for the exploration service's JSON IPC.

:class:`ServiceClient` wraps one socket connection in typed calls::

    with ServiceClient(port=7293) as client:
        job = client.submit(["d695"], widths=[16, 24, 32], num_tams=2)
        record = client.wait(job)
        for point in client.result(job)["points"]:
            print(point["total_width"], point["testing_time"])

Every method sends one request line and reads one response line; an
``ok: false`` answer raises :class:`~repro.exceptions.ServiceError`
with the server's message.  The connection is persistent (the server
handles many requests per connection) and the client is *not*
thread-safe — use one per thread.
"""

from __future__ import annotations

import json
import logging
import socket
import time as _time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from repro.api.envelopes import PROTOCOL_VERSION, JobEvent
from repro.api.specs import DEFAULT_MAX_TAMS, GridSpec
from repro.exceptions import (
    ConfigurationError,
    OverloadedError,
    QuotaExceededError,
    ServiceError,
    ServiceTransportError,
    UnauthorizedError,
)
from repro.retry import backoff_schedule

logger = logging.getLogger(__name__)

#: Typed rejection classes by the machine-readable ``code`` field a
#: server puts on policy refusals; anything else stays a plain
#: :class:`~repro.exceptions.ServiceError`.
_REJECTION_TYPES = {
    "unauthorized": UnauthorizedError,
    "over_quota": QuotaExceededError,
    "overloaded": OverloadedError,
}


def _response_error(response: Any) -> ServiceError:
    """The exception an ``ok: false`` response line decodes to."""
    message = "request failed"
    code: Optional[str] = None
    retry_after: Optional[float] = None
    if isinstance(response, dict):
        message = str(response.get("error", message))
        code = response.get("code")
        raw_retry = response.get("retry_after")
        if isinstance(raw_retry, (int, float)) \
                and not isinstance(raw_retry, bool):
            retry_after = float(raw_retry)
    rejection = _REJECTION_TYPES.get(code or "")
    if rejection is not None:
        return rejection(message, retry_after=retry_after)
    return ServiceError(message)


class ServiceClient:
    """One connection to a running exploration service.

    Parameters
    ----------
    host / port:
        Where ``repro-tam serve`` (or an :class:`repro.service.ipc.
        IPCServer`) is listening.
    timeout:
        Socket timeout in seconds for connect and for each response.
        Blocking ``wait`` calls bump it by their own timeout so the
        socket never fires first.
    token:
        Bearer token attached to every request — required when the
        server runs with ``--auth``.  The server resolves it to a
        client identity with a priority class and quota.
    priority:
        Default priority class for submissions (``high`` / ``normal``
        / ``low``); a client may lower, never raise, its registered
        class.  ``None`` submits at the registered class.
    overload_retries:
        How many times :meth:`submit_grid` transparently retries a
        typed ``overloaded`` rejection, honoring the server's
        ``retry_after`` hint between attempts.  ``0`` surfaces the
        first :class:`~repro.exceptions.OverloadedError` directly.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 30.0,
        token: Optional[str] = None,
        priority: Optional[str] = None,
        overload_retries: int = 3,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.token = token
        self.priority = priority
        self.overload_retries = max(0, int(overload_retries))
        self._connect()

    def _connect(self) -> None:
        """(Re)establish the socket; transport state starts fresh."""
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as error:
            raise ServiceTransportError(
                f"cannot connect to service at {self.host}:"
                f"{self.port}: {error}"
            ) from error
        self._reader = self._sock.makefile("rb")

    def _reconnect(self) -> None:
        """Swap in a fresh connection after a transport failure."""
        try:
            self.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        self._connect()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object, return the decoded response.

        The raw escape hatch the typed methods build on; raises
        :class:`~repro.exceptions.ServiceError` on transport failure,
        undecodable responses, or an ``ok: false`` answer — typed
        rejections (``unauthorized`` / ``over_quota`` /
        ``overloaded``) decode to their
        :class:`~repro.exceptions.ServiceRejectionError` subclasses.
        The client's bearer token, when set, rides on every request.
        """
        if self.token is not None and "token" not in request:
            request = dict(request, token=self.token)
        payload = json.dumps(request) + "\n"
        try:
            self._sock.sendall(payload.encode("utf-8"))
            line = self._reader.readline()
        except OSError as error:
            raise ServiceTransportError(
                f"service connection failed: {error}"
            ) from error
        if not line:
            raise ServiceTransportError(
                "service closed the connection mid-request"
            )
        try:
            # Plain response line: `ok`/`error` framing plus loose
            # per-op fields — there is deliberately no envelope class
            # for these (only requests and events are typed), so the
            # framing checks below are the whole validation.
            response = json.loads(line)  # repro: allow[RPR005]
        except ValueError as error:
            raise ServiceTransportError(
                f"undecodable service response: {error}"
            ) from error
        if not isinstance(response, dict) or not response.get("ok"):
            raise _response_error(response)
        return response

    def close(self) -> None:
        """Close the connection (the server keeps running)."""
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        """Context-manager entry: the connected client."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: close the connection."""
        self.close()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        """Liveness check; returns the server's counters."""
        return self.call({"op": "ping"})

    def submit_grid(
        self, grid: GridSpec, priority: Optional[str] = None
    ) -> str:
        """Submit one typed :class:`repro.api.GridSpec`; returns the
        job ID.

        The protocol canonical submission: the spec serializes
        through its schema-versioned ``to_dict`` and is re-validated
        server-side, and its canonical content key is what the
        server memoizes on — in memory and, with a ``--cache-dir``,
        across restarts.  ``priority`` (default: the client's
        configured class) may lower the submission below the
        client's registered priority.

        A typed ``overloaded`` rejection is retried transparently up
        to ``overload_retries`` times, sleeping the server's
        ``retry_after`` hint between attempts — callers see either a
        job id or the final :class:`~repro.exceptions.
        OverloadedError`, never the intermediate ones.
        """
        request: Dict[str, Any] = {
            "v": PROTOCOL_VERSION,
            "op": "submit",
            "spec": grid.to_dict(),
        }
        if priority is None:
            priority = self.priority
        if priority is not None:
            request["priority"] = priority
        # Deterministic fallback delays for overloaded servers that
        # (version skew) sent no retry_after hint.
        fallback = backoff_schedule(
            max(1, self.overload_retries), base=0.25, cap=5.0
        )
        attempts = self.overload_retries + 1
        for attempt in range(attempts):
            try:
                return str(self.call(request)["job"])
            except OverloadedError as error:
                if attempt + 1 >= attempts:
                    raise
                delay = (
                    error.retry_after
                    if error.retry_after is not None
                    else fallback[attempt % len(fallback)]
                )
                logger.warning(
                    "server overloaded; retrying submit in %.2fs "
                    "(attempt %d/%d)", delay, attempt + 1, attempts,
                )
                _time.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def submit(
        self,
        socs: Sequence[str],
        widths: Sequence[int],
        num_tams: Union[int, Sequence[int], None] = None,
        bmax: Optional[int] = None,
        options: Optional[Dict[str, Any]] = None,
        shard: Union[int, str, None] = None,
        priority: Optional[str] = None,
    ) -> str:
        """Submit a SOCs × widths grid; returns the job ID.

        Convenience wrapper over :meth:`submit_grid`: the axes are
        folded into a :class:`repro.api.GridSpec` exactly like
        ``repro-tam batch`` folds its arguments (``-B`` wins,
        otherwise the flat ``1..bmax`` P_NPAW counts), so the same
        grid submitted either way memo-hits.  ``socs`` are sources
        the *server* resolves (benchmark names or ``.soc`` paths
        readable server-side).  Whether the answer came from the
        server's memo is visible via :meth:`status` (``cached``).

        ``shard`` is the intra-job sharding hint (``"auto"``, a shard
        count, or ``None`` for the server's policy): an execution
        hint carried in the spec's ``runner`` mapping, excluded from
        the canonical key — so the same grid memo-hits at any shard
        setting.
        """
        if num_tams is None:
            num_tams = tuple(
                range(1, (bmax or DEFAULT_MAX_TAMS) + 1)
            )
        runner: Dict[str, Any] = (
            {} if shard is None else {"shard": shard}
        )
        return self.submit_grid(GridSpec.from_axes(
            socs, widths, num_tams=num_tams, options=options,
            runner=runner,
        ), priority=priority)

    def status(self, job_id: str) -> Dict[str, Any]:
        """Status snapshot of ``job_id``."""
        return self.call({"op": "status", "job": job_id})

    def wait(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Block server-side until ``job_id`` is terminal (or timeout).

        Returns the final status snapshot; with a ``timeout`` the job
        may still be ``running`` — check the ``status`` field.
        """
        request: Dict[str, Any] = {"op": "wait", "job": job_id}
        if timeout is not None:
            request["timeout"] = float(timeout)
        previous = self._sock.gettimeout()
        # The server blocks for up to `timeout`; give the socket
        # headroom so the transport never expires before the wait.
        self._sock.settimeout(
            None if timeout is None else self.timeout + timeout
        )
        try:
            return self.call(request)
        finally:
            self._sock.settimeout(previous)

    def _events_once(
        self,
        job_id: str,
        start: int,
        timeout: Optional[float],
    ) -> Iterator[Dict[str, Any]]:
        """One ``events`` stream over the current connection."""
        request: Dict[str, Any] = {
            "v": PROTOCOL_VERSION,
            "op": "events",
            "job": job_id,
        }
        if self.token is not None:
            request["token"] = self.token
        if start:
            request["from"] = int(start)
        if timeout is not None:
            request["timeout"] = float(timeout)
        previous = self._sock.gettimeout()
        # The server pushes lines for as long as the grid runs; only
        # a bounded stream keeps a socket deadline.
        self._sock.settimeout(
            None if timeout is None else self.timeout + timeout
        )
        try:
            payload = json.dumps(request) + "\n"
            try:
                self._sock.sendall(payload.encode("utf-8"))
            except OSError as error:
                raise ServiceTransportError(
                    f"service connection failed: {error}"
                ) from error
            while True:
                try:
                    line = self._reader.readline()
                except OSError as error:
                    raise ServiceTransportError(
                        f"service connection failed: {error}"
                    ) from error
                if not line:
                    raise ServiceTransportError(
                        "service closed the connection mid-stream"
                    )
                try:
                    response = json.loads(line)
                except ValueError as error:
                    raise ServiceTransportError(
                        f"undecodable service response: {error}"
                    ) from error
                if not isinstance(response, dict) \
                        or not response.get("ok"):
                    raise _response_error(response)
                if "event" in response:
                    # Validate through the typed envelope before
                    # handing the record to callers: a server pushing
                    # malformed events is a protocol error, reported
                    # here rather than as a KeyError downstream.
                    try:
                        event = JobEvent.from_dict(response["event"])
                    except ConfigurationError as error:
                        raise ServiceError(
                            f"malformed event record: {error}"
                        ) from error
                    yield event.to_dict()
                    continue
                if response.get("done"):
                    return
        finally:
            try:
                self._sock.settimeout(previous)
            except OSError:  # pragma: no cover - socket replaced
                pass

    def events(
        self,
        job_id: str,
        start: int = 0,
        timeout: Optional[float] = None,
        reconnect: bool = False,
        max_reconnects: int = 5,
    ) -> Iterator[Dict[str, Any]]:
        """Stream ``job_id``'s per-point completion events.

        Yields one serialized :class:`repro.api.JobEvent` dictionary
        per finished grid point, pushed by the server as the grid
        runs (protocol v2 ``events`` op), and returns when the job
        is terminal — no polling.  ``start`` resumes mid-stream at
        an event sequence number; ``timeout`` bounds the server-side
        wait.  Raises :class:`~repro.exceptions.ServiceError` on an
        error line.

        With ``reconnect=True`` a *dropped* stream (the connection —
        not the request — failed: :class:`~repro.exceptions.
        ServiceTransportError`) is resumed transparently: the client
        reconnects and re-issues the request from the sequence cursor
        after the last delivered event, so consumers see every event
        exactly once.  ``max_reconnects`` bounds consecutive
        reconnect attempts *without progress* — failed reconnects
        included, with a short growing backoff between them (a
        restarting server answers connection-refused for a moment) —
        and any delivered event resets the budget.  Server-side
        errors (unknown job, bad request) are never retried.
        """
        next_seq = start
        failures = 0
        dropped = False
        # Deterministic backoff: the whole delay sequence is fixed up
        # front (seeded, no wall-clock randomness), so reconnect
        # timing is reproducible in tests and across runs.
        delays = backoff_schedule(max_reconnects, base=0.1, cap=1.0)
        while True:
            try:
                if dropped:
                    dropped = False
                    self._reconnect()
                for event in self._events_once(
                    job_id, next_seq, timeout
                ):
                    cursor = event.get("seq")
                    next_seq = (
                        int(cursor) + 1 if cursor is not None
                        else next_seq + 1
                    )
                    failures = 0
                    yield event
                return
            except ServiceTransportError as error:
                if not reconnect:
                    raise
                failures += 1
                if failures > max_reconnects:
                    raise ServiceTransportError(
                        f"event stream for {job_id} did not recover "
                        f"after {max_reconnects} reconnect attempts "
                        f"(last cursor {next_seq}): {error}"
                    ) from error
                logger.warning(
                    "event stream for %s dropped (%s); reconnecting "
                    "from seq %d (attempt %d/%d)",
                    job_id, error, next_seq, failures, max_reconnects,
                )
                dropped = True
                if failures > 1:
                    _time.sleep(delays[failures - 2])

    def result(self, job_id: str) -> Dict[str, Any]:
        """Finished grid of ``job_id``: ``points`` and ``failures``.

        ``points`` are serialized sweep records (one per successful
        grid point, each tagged with its ``soc``); ``failures`` are
        structured error records for points that raised.
        """
        return self.call({"op": "result", "job": job_id})

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; True when it was still cancellable."""
        return bool(self.call({"op": "cancel", "job": job_id})["cancelled"])

    def shutdown(self) -> None:
        """Ask the server to stop (responds, then exits)."""
        self.call({"op": "shutdown"})


def run_grid_remotely(
    client: ServiceClient,
    socs: Sequence[str],
    widths: Sequence[int],
    num_tams: Union[int, Sequence[int], None] = None,
    bmax: Optional[int] = None,
    options: Optional[Dict[str, Any]] = None,
    timeout: Optional[float] = None,
) -> Dict[str, Any]:
    """Submit, wait, and fetch in one call — the 90% client workflow.

    Returns the ``result`` payload.  Raises
    :class:`~repro.exceptions.ServiceError` when the job ends in any
    state but ``done`` (including a ``wait`` timeout).
    """
    job_id = client.submit(
        socs, widths, num_tams=num_tams, bmax=bmax, options=options
    )
    record = client.wait(job_id, timeout=timeout)
    if record["status"] != "done":
        raise ServiceError(
            f"job {job_id} ended as {record['status']}: "
            f"{record.get('error', 'no result')}"
        )
    return client.result(job_id)
