"""The service subsystem: persistence and a resident job server.

PR 1's engine removed *intra-run* waste (shared tables, pooled
sweeps).  This subpackage removes the *cross-run* and *cross-client*
waste the interactive workload actually pays for:

* :mod:`~repro.service.store` — :class:`TableStore`, an on-disk,
  content-hash-keyed store of Pareto-compressed wrapper time tables.
  Backing a :class:`repro.engine.cache.WrapperTableCache` with it
  makes repeated CLI/benchmark/service invocations skip
  ``design_wrapper`` entirely once warm;
* :mod:`~repro.service.server` — :class:`ExplorationServer`, a
  long-lived job server over a persistent
  :class:`repro.engine.batch.BatchRunner`: job queue, IDs,
  status/result polling, cancellation, structured per-point failure
  records, and whole-grid result memoization;
* :mod:`~repro.service.ipc` — :class:`IPCServer`, a line-oriented
  JSON TCP front-end (``repro-tam serve``), speaking the versioned
  protocol of :mod:`repro.api.envelopes` (v2 typed
  :class:`repro.api.GridSpec` submissions and streamed
  :class:`repro.api.JobEvent` progress; v1 still accepted);
* :mod:`~repro.service.client` — :class:`ServiceClient`, the Python
  client behind ``repro-tam submit``;
* :mod:`~repro.service.journal` — :class:`JobJournal`, the durable
  submission journal that makes accepted jobs survive a server
  crash: replayed (deduplicated by canonical key) on the next start;
* :mod:`~repro.service.tenancy` — the multi-tenant layer: bearer
  :class:`TokenRegistry` (``tokens.json``), per-client
  :class:`QuotaPolicy` and :class:`ClientIdentity`, and the
  priority-aware bounded :class:`AdmissionQueue` the server drains
  with weighted-fair scheduling and sheds under overload.

Result memoization is keyed by the grid's canonical content hash
(:meth:`repro.api.GridSpec.canonical_key`) and — when a cache
directory is configured — persisted as a :class:`GridMemo` next to
the table store, so identical grids are answered ``cached`` across
server restarts.
"""

from repro.service.client import ServiceClient, run_grid_remotely
from repro.service.ipc import IPCServer
from repro.service.journal import JobJournal, JournalEntry
from repro.service.server import (
    ExplorationServer,
    JobRecord,
    grid_payload,
)
from repro.service.store import GridMemo, TableStore
from repro.service.tenancy import (
    ANONYMOUS_CLIENT,
    AdmissionQueue,
    ClientAccount,
    ClientIdentity,
    QuotaPolicy,
    TokenRegistry,
)

__all__ = [
    "TableStore",
    "GridMemo",
    "ExplorationServer",
    "JobRecord",
    "JobJournal",
    "JournalEntry",
    "grid_payload",
    "IPCServer",
    "ServiceClient",
    "run_grid_remotely",
    "TokenRegistry",
    "QuotaPolicy",
    "ClientIdentity",
    "ClientAccount",
    "AdmissionQueue",
    "ANONYMOUS_CLIENT",
]
