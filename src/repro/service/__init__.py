"""The service subsystem: persistence and a resident job server.

PR 1's engine removed *intra-run* waste (shared tables, pooled
sweeps).  This subpackage removes the *cross-run* and *cross-client*
waste the interactive workload actually pays for:

* :mod:`~repro.service.store` — :class:`TableStore`, an on-disk,
  content-hash-keyed store of Pareto-compressed wrapper time tables.
  Backing a :class:`repro.engine.cache.WrapperTableCache` with it
  makes repeated CLI/benchmark/service invocations skip
  ``design_wrapper`` entirely once warm;
* :mod:`~repro.service.server` — :class:`ExplorationServer`, a
  long-lived job server over a persistent
  :class:`repro.engine.batch.BatchRunner`: job queue, IDs,
  status/result polling, cancellation, structured per-point failure
  records, and whole-grid result memoization;
* :mod:`~repro.service.ipc` — :class:`IPCServer`, a line-oriented
  JSON TCP front-end (``repro-tam serve``);
* :mod:`~repro.service.client` — :class:`ServiceClient`, the Python
  client behind ``repro-tam submit``.
"""

from repro.service.client import ServiceClient, run_grid_remotely
from repro.service.ipc import IPCServer
from repro.service.server import ExplorationServer, JobRecord
from repro.service.store import TableStore

__all__ = [
    "TableStore",
    "ExplorationServer",
    "JobRecord",
    "IPCServer",
    "ServiceClient",
    "run_grid_remotely",
]
