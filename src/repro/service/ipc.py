"""Line-oriented JSON IPC in front of the exploration server.

One request per line, one JSON object per response line — the whole
protocol is greppable from a terminal::

    $ printf '{"op":"ping"}\n' | nc 127.0.0.1 7293
    {"ok": true, "pong": true, ...}

The protocol is versioned by an optional ``v`` field on every
request; a request without one is **version 1**, and both versions
are served by the same listener (see :mod:`repro.api.envelopes` for
the compatibility policy).  Version 2 responses echo ``"v": 2``;
version 1 responses stay byte-compatible with what v1 clients always
received.

Operations (``op`` field):

``ping``
    Liveness check; echoes server :meth:`~repro.service.server.
    ExplorationServer.info` counters.
``submit``
    v2: ``{"v":2,"op":"submit","spec":{...}}`` with a typed,
    schema-versioned :class:`repro.api.GridSpec` dictionary — the
    same canonical spec ``co_optimize`` and ``repro-tam batch``
    consume, validated at the boundary.
    v1 (still accepted): ``{"op":"submit","socs":["d695",...],
    "widths":[16,24],...}`` — sources are benchmark names or ``.soc``
    paths (resolved server-side by :func:`repro.soc.loader.
    load_source`); optional ``num_tams`` (int or list), ``bmax``
    (P_NPAW cap, default 10) and ``options`` (forwarded to
    ``co_optimize``).  Both forms reduce to the same canonical
    content key, so they share one memo.  Answers
    ``{"ok":true,"job":"job-0001","cached":false,...}``.
``status`` / ``wait``
    Poll or block (``timeout`` seconds, optional) on a job ID.
``result``
    Finished grid as serialized sweep points (``points``) plus
    structured per-point failures (``failures``).
``events``
    v2: *streaming* per-point progress — one response line per
    finished grid point (``{"ok":true,"event":{...}}``, see
    :class:`repro.api.JobEvent`), pushed as the grid runs, then a
    final ``{"ok":true,"done":true,...}`` status line.  ``from``
    resumes a stream at an event sequence number.  The push-style
    replacement for poll/wait loops.
``cancel``
    Cancel a still-queued job.
``shutdown``
    Orderly stop: responds, then stops the listener and the
    exploration server (queued jobs are dropped, the running grid
    finishes).

Every response carries ``ok``; failures are ``{"ok": false,
"error": ...}`` and never tear down the connection.  The listener is
a threading TCP server bound to localhost by default — this is an
engineer-facing workstation service, not an internet-facing one.
"""

from __future__ import annotations

import json
import logging
import socket
import socketserver
import threading
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.api.envelopes import JobRequest
from repro.api.specs import DEFAULT_MAX_TAMS
from repro.engine.batch import BatchJob
from repro.engine.faults import FaultPlan
from repro.exceptions import (
    ReproError,
    ServiceRejectionError,
    UnauthorizedError,
)
from repro.service.server import ExplorationServer, grid_payload
from repro.service.tenancy import ClientIdentity
from repro.soc.loader import load_source

logger = logging.getLogger(__name__)

#: Hard cap on one request line (bytes).  A line-oriented protocol
#: read unbounded is a trivial memory DoS — one peer streaming a
#: newline-free gigabyte used to buffer forever.  1 MiB comfortably
#: holds the largest real submission (a v2 spec with hundreds of
#: sources) while bounding the worst case.
DEFAULT_MAX_REQUEST_BYTES = 1 << 20

#: Per-connection read deadline (seconds): a peer that opens a
#: connection and never finishes a line is answered with a typed
#: ``stalled`` error and dropped, instead of pinning a handler
#: thread forever.
DEFAULT_READ_TIMEOUT = 600.0


def jobs_from_request(request: Dict[str, Any]) -> List[BatchJob]:
    """Build the grid a ``submit`` request describes.

    Mirrors the ``repro-tam batch`` subcommand exactly — same source
    resolution, same widths-fastest job order, same ``bmax``-derived
    P_NPAW default — so a grid submitted over IPC memoizes and
    reproduces identically to one run locally.
    """
    sources = request.get("socs")
    widths = request.get("widths")
    if not sources or not isinstance(sources, list):
        raise ReproError("submit needs a non-empty 'socs' list")
    if not widths or not isinstance(widths, list):
        raise ReproError("submit needs a non-empty 'widths' list")
    num_tams = request.get("num_tams")
    if num_tams is None:
        bmax = int(request.get("bmax", DEFAULT_MAX_TAMS))
        num_tams = tuple(range(1, bmax + 1))
    elif isinstance(num_tams, list):
        num_tams = tuple(int(count) for count in num_tams)
    else:
        num_tams = int(num_tams)
    options = request.get("options") or {}
    if not isinstance(options, dict):
        raise ReproError("'options' must be an object")
    socs = [load_source(str(source)) for source in sources]
    return [
        BatchJob(
            soc=soc,
            total_width=int(width),
            num_tams=num_tams,
            options=options,
        )
        for soc in socs
        for width in widths
    ]


def result_payload(
    jobs: Tuple[BatchJob, ...], results: List[Any]
) -> Dict[str, Any]:
    """Serialize a finished grid — alias of :func:`~repro.service.
    server.grid_payload`, kept at its historical import site."""
    return grid_payload(jobs, results)


class _InjectedDisconnect(Exception):
    """Raised by an ``ipc@K`` fault to sever the whole connection.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: it
    must escape :func:`_event_stream`'s error handling and reach the
    connection handler, which drops the socket — exactly what a real
    network fault looks like from the client's side.
    """


def _event_stream(
    exploration: ExplorationServer,
    job_id: str,
    start: int,
    timeout: Optional[float],
    tag: Dict[str, Any],
) -> Iterator[Dict[str, Any]]:
    """Response lines for one ``events`` stream, errors included.

    Fault hook: an ``ipc@K`` directive in ``REPRO_FAULTS`` severs
    the stream after ``K`` event lines (the generator just stops, so
    the connection handler moves on and the client sees a mid-stream
    close) — the injected double of a flaky network.  The reconnect
    path then resumes from the client's sequence cursor.
    """
    drop_after: Optional[int] = None
    plan = FaultPlan.from_env()
    if plan is not None:
        drop_after = plan.take_ipc_drop()
    try:
        sent = 0
        for event in exploration.events(
            job_id, start=start, timeout=timeout
        ):
            if drop_after is not None and sent >= drop_after:
                exploration.runner.metrics.counter(
                    "faults.injected"
                ).inc()
                logger.warning(
                    "fault injection: severing event stream for %s "
                    "after %d events", job_id, sent,
                )
                raise _InjectedDisconnect(job_id)
            yield {"ok": True, "event": event.to_dict(), **tag}
            sent += 1
        yield {
            "ok": True,
            "done": True,
            **exploration.status(job_id),
            **tag,
        }
    except ReproError as error:
        yield {"ok": False, "error": str(error), **tag}


def _check_job_access(
    exploration: ExplorationServer,
    client: ClientIdentity,
    job_id: str,
) -> None:
    """Job-scoped ops touch only the caller's own jobs under auth.

    With auth off every identity is anonymous and every job is
    anonymous-owned, so this never fires — the open single-trust
    service is unchanged.  Unknown job ids raise the usual
    :class:`~repro.exceptions.ServiceError` from :meth:`record`
    *before* the ownership check, deliberately: probing for another
    tenant's job ids learns nothing new (ids are sequential anyway),
    while a misaddressed request gets the accurate answer.
    """
    if exploration.token_registry is None:
        return
    record = exploration.record(job_id)
    if record.client_id != client.client_id:
        exploration.note_rejection(client, "unauthorized")
        raise UnauthorizedError(
            f"job {job_id} belongs to another client"
        )


def handle_request(
    exploration: ExplorationServer, request: Dict[str, Any]
) -> Tuple[Union[Dict[str, Any], Iterable[Dict[str, Any]]], bool]:
    """Dispatch one decoded request; returns (response, shutdown?).

    Pure with respect to the transport — the unit the protocol tests
    drive directly.  The raw dict is decoded into one
    :class:`repro.api.JobRequest` envelope (the single place version
    and field validation live), then dispatched.  The response is
    one JSON-ready object for every op except ``events``, which
    returns an *iterable* of them (one line per event, the transport
    writes each as it arrives).  Library errors (:class:`~repro.
    exceptions.ReproError`) become ``ok: false`` responses;
    programming errors propagate.
    """
    #: Echoed on v2+ responses; v1 responses stay byte-compatible.
    tag: Dict[str, Any] = {}
    try:
        envelope = JobRequest.from_dict(request)
        if envelope.version >= 2:
            tag = {"v": envelope.version}
        op = envelope.op
        job_id = str(envelope.job_id)
        if op == "ping":
            # Liveness stays unauthenticated — health checks must
            # not need credentials.
            return {
                "ok": True, "pong": True, **exploration.info(), **tag,
            }, False
        # Every other op runs as an authenticated identity (or the
        # anonymous one when auth is off) — resolved once, here.
        client = exploration.authenticate(envelope.token)
        if op == "submit":
            if envelope.spec is not None:
                # v2 typed path: the GridSpec was schema-validated by
                # the envelope decode (bad specs answer ok:false
                # before anything is enqueued).
                record = exploration.submit(
                    envelope.spec,
                    client=client,
                    priority=envelope.priority,
                )
            else:
                record = exploration.submit(
                    jobs_from_request(envelope.extra_dict()),
                    client=client,
                    priority=envelope.priority,
                )
            return {
                "ok": True,
                "job": record.job_id,
                "cached": record.cached,
                "status": record.status,
                "num_jobs": len(record.jobs),
                **tag,
            }, False
        if op == "status":
            _check_job_access(exploration, client, job_id)
            snapshot = exploration.status(job_id)
            return {"ok": True, **snapshot, **tag}, False
        if op == "wait":
            _check_job_access(exploration, client, job_id)
            record = exploration.wait(job_id, timeout=envelope.timeout)
            return {"ok": True, **record.snapshot(), **tag}, False
        if op == "result":
            _check_job_access(exploration, client, job_id)
            payload = exploration.result_payload(job_id)
            record = exploration.record(job_id)
            return {
                "ok": True,
                **record.snapshot(),
                **payload,
                **tag,
            }, False
        if op == "events":
            # Unknown IDs and foreign jobs fail up front, before the
            # stream starts.
            _check_job_access(exploration, client, job_id)
            return _event_stream(
                exploration,
                job_id,
                envelope.start,
                envelope.timeout,
                tag,
            ), False
        if op == "cancel":
            _check_job_access(exploration, client, job_id)
            cancelled = exploration.cancel(job_id)
            return {"ok": True, "cancelled": cancelled, **tag}, False
        if op == "shutdown":
            return {"ok": True, "bye": True, **tag}, True
        raise ReproError(f"unknown op {op!r}")
    except ServiceRejectionError as error:
        # Policy refusals are first-class answers: a stable machine
        # code and (for overload) a retry hint, never a dropped
        # connection or a traceback.
        response: Dict[str, Any] = {
            "ok": False,
            "error": str(error),
            "code": error.code,
            **tag,
        }
        if error.retry_after is not None:
            response["retry_after"] = error.retry_after
        return response, False
    except ReproError as error:
        return {"ok": False, "error": str(error), **tag}, False
    except (ValueError, TypeError, KeyError, OSError) as error:
        # Malformed field *types* (non-numeric widths/timeout,
        # unhashable options, an unreadable/directory .soc path, ...)
        # are the client's fault, not a server bug: answer, don't
        # tear down the connection.
        logger.warning(
            "malformed %r request: %s: %s",
            request.get("op"), type(error).__name__, error,
        )
        return {
            "ok": False,
            "error": f"malformed request: {type(error).__name__}: {error}",
            **tag,
        }, False


class _Handler(socketserver.StreamRequestHandler):
    """One connection: newline-delimited JSON requests in, out.

    Two transport-level guards (the rest of validation lives in
    :func:`handle_request`): a request line longer than the server's
    ``max_request_bytes`` is answered with a typed ``oversized``
    error and the connection closed (the line cannot be resynced
    mid-stream), and a peer that stalls mid-line past
    ``read_timeout`` gets a typed ``stalled`` error and is dropped —
    neither ever buffers unbounded input or pins a handler thread.
    """

    def handle(self) -> None:
        """Serve requests until the peer closes or asks for shutdown."""
        exploration = self.server.exploration  # type: ignore[attr-defined]
        max_bytes = self.server.max_request_bytes  # type: ignore[attr-defined]
        read_timeout = self.server.read_timeout  # type: ignore[attr-defined]
        if read_timeout is not None:
            self.connection.settimeout(read_timeout)
        while True:
            try:
                raw = self.rfile.readline(max_bytes + 1)
            except socket.timeout:
                exploration.runner.metrics.counter(
                    "ipc.stalled_connections"
                ).inc()
                logger.warning(
                    "dropping stalled connection from %s "
                    "(no complete request in %gs)",
                    self.client_address, read_timeout,
                )
                self._reply({
                    "ok": False,
                    "error": (
                        f"no complete request line within "
                        f"{read_timeout:g}s"
                    ),
                    "code": "stalled",
                })
                return
            except OSError:
                return  # peer vanished mid-read
            if not raw:
                return  # orderly close
            if len(raw) > max_bytes:
                exploration.runner.metrics.counter(
                    "ipc.oversized_requests"
                ).inc()
                logger.warning(
                    "rejected oversized request from %s "
                    "(> %d bytes)",
                    self.client_address, max_bytes,
                )
                self._reply({
                    "ok": False,
                    "error": (
                        f"request line exceeds {max_bytes} bytes"
                    ),
                    "code": "oversized",
                })
                # The rest of the over-long line is unread; there is
                # no way back to a line boundary, so close.
                return
            line = raw.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as error:  # repro: allow[RPR008] request loop, not a retry: one iteration per client request, bounded by the read deadline
                logger.warning(
                    "rejected undecodable request from %s: %s",
                    self.client_address, error,
                )
                self._reply({"ok": False, "error": f"bad request: {error}"})
                continue
            response, stop = handle_request(exploration, request)
            if isinstance(response, dict):
                self._reply(response)
            else:
                # Streaming op (`events`): one line per item, flushed
                # as produced, so clients see progress in real time.
                try:
                    for item in response:
                        self._reply(item)
                except _InjectedDisconnect:
                    # Fault injection: drop the connection without a
                    # done line, as a network failure would.
                    return
            if stop:
                self.server.initiate_shutdown()  # type: ignore[attr-defined]
                return

    def _reply(self, response: Dict[str, Any]) -> None:
        try:
            payload = json.dumps(response, sort_keys=True)
            self.wfile.write(payload.encode("utf-8") + b"\n")
            self.wfile.flush()
        except OSError:
            # The peer is gone; the enclosing loop exits on its next
            # read.  A reply to a dead socket must not kill the
            # handler with a traceback.
            pass


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    """TCP listener that knows its exploration server."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        exploration: ExplorationServer,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        read_timeout: Optional[float] = DEFAULT_READ_TIMEOUT,
    ) -> None:
        super().__init__(address, _Handler)
        self.exploration = exploration
        self.max_request_bytes = max_request_bytes
        self.read_timeout = read_timeout

    def initiate_shutdown(self) -> None:
        """Stop the listener (from a handler thread) and the service."""
        # shutdown() blocks until serve_forever exits, so it must run
        # off the serving thread; handler threads qualify, but detach
        # anyway so a handler never waits on itself.
        threading.Thread(target=self.shutdown, daemon=True).start()
        self.exploration.shutdown(wait=True)


class IPCServer:
    """The socket front-end: an :class:`ExplorationServer` plus listener.

    Parameters
    ----------
    exploration:
        The job server to expose.
    host / port:
        Bind address.  Port ``0`` (default) lets the OS pick a free
        port — read it back from :attr:`address`.
    max_request_bytes:
        Cap on one request line; longer lines are answered with a
        typed ``oversized`` error and the connection closed.
    read_timeout:
        Per-connection read deadline (seconds); a peer with no
        complete request line within it is answered with a typed
        ``stalled`` error and dropped.  ``None`` disables.
    """

    def __init__(
        self,
        exploration: ExplorationServer,
        host: str = "127.0.0.1",
        port: int = 0,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        read_timeout: Optional[float] = DEFAULT_READ_TIMEOUT,
    ) -> None:
        self.exploration = exploration
        self._tcp = _ThreadingTCPServer(
            (host, port), exploration,
            max_request_bytes=max_request_bytes,
            read_timeout=read_timeout,
        )
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The (host, port) actually bound."""
        return self._tcp.server_address[:2]

    def serve_forever(self) -> None:
        """Serve until a ``shutdown`` request or :meth:`stop` arrives."""
        self._tcp.serve_forever(poll_interval=0.1)
        self._tcp.server_close()

    def start(self) -> "IPCServer":
        """Serve on a background thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self.serve_forever,
            name="repro-service-ipc",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop listener and exploration server from the outside."""
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.exploration.shutdown(wait=True)

    def __enter__(self) -> "IPCServer":
        """Context-manager entry: a started server."""
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: full stop."""
        self.stop()
