"""Durable job journal: crash-safe record of accepted work.

The :class:`~repro.service.server.ExplorationServer` keeps job
records in memory — fine for liveness, fatal for durability: a
killed server silently loses every queued and in-flight job.  The
:class:`JobJournal` fixes that with the classic recipe — state in
the store, process stateless:

* every *accepted* submission appends a ``submitted`` entry (the
  job id, its canonical content key, the typed spec when one exists,
  and the runner hints) and is fsynced before the caller learns the
  job id — the at-least-once half of the durability contract;
* every *terminal* transition (done / failed / cancelled) appends a
  ``terminal`` entry, fsync-batched (losing a terminal entry merely
  re-runs a finished grid, and the :class:`~repro.service.store.
  GridMemo` answers that replay instantly — the effectively
  exactly-once half).

On startup the server calls :meth:`replay`: entries are folded in
order, anything submitted but not terminal is returned for automatic
resubmission (deduplicated by canonical key), and the journal is
compacted down to just those open entries.

The format is one JSON object per line, append-only.  A torn final
line is the *expected* crash artifact and is dropped silently;
corrupt interior lines are skipped with a warning — a damaged
journal degrades to replaying less, never to refusing to start.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["JobJournal", "JournalEntry", "JOURNAL_NAME"]

logger = logging.getLogger(__name__)

#: File name inside the cache directory, next to the table store.
JOURNAL_NAME = "journal.jsonl"


@dataclass(frozen=True)
class JournalEntry:
    """One open (submitted, not yet terminal) journal record.

    ``client_id``/``priority`` carry the submitting tenant so a
    replay after a crash restores per-client accounting, not just the
    work itself.  Absent on pre-tenancy journals — replay then runs
    the entry as the anonymous client, which is exactly what those
    servers did.
    """

    job_id: str
    key: Optional[str]
    spec: Optional[Dict[str, Any]]
    shard: Optional[Any] = None
    point_timeout: Optional[float] = None
    client_id: Optional[str] = None
    priority: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """The ``submitted`` line this entry serializes to."""
        record: Dict[str, Any] = {
            "kind": "submitted",
            "job": self.job_id,
            "key": self.key,
            "spec": self.spec,
        }
        if self.shard is not None:
            record["shard"] = self.shard
        if self.point_timeout is not None:
            record["point_timeout"] = self.point_timeout
        if self.client_id is not None:
            record["client"] = self.client_id
        if self.priority is not None:
            record["priority"] = self.priority
        return record


class JobJournal:
    """Append-only, fsync-batched journal of job submissions/outcomes.

    Parameters
    ----------
    path:
        The journal file (created on first append; parent directory
        must exist — it is the cache directory).
    fsync_every:
        Terminal entries are fsynced at most every this many appends
        (and on :meth:`close`).  ``submitted`` entries are *always*
        fsynced — accepting a job is the durability point.
    """

    def __init__(self, path: Path, fsync_every: int = 8) -> None:
        self.path = Path(path)
        self._fsync_every = max(1, int(fsync_every))
        self._lock = threading.Lock()
        self._handle: Optional[Any] = None
        self._unsynced = 0
        self._appends_since_compact = 0
        self.compactions = 0
        self.last_replay_lines = 0

    # -- appends ------------------------------------------------------

    def record_submitted(self, entry: JournalEntry) -> None:
        """Durably record an accepted submission (always fsynced)."""
        self._append(entry.to_dict(), sync=True)

    def record_terminal(self, job_id: str, status: str) -> None:
        """Record a terminal transition (fsync-batched)."""
        self._append(
            {"kind": "terminal", "job": job_id, "status": status},
            sync=False,
        )

    def record_replayed(self, job_id: str, new_job_id: str) -> None:
        """Mark an open entry as resubmitted under a new job id.

        Treated as terminal for ``job_id`` on the next replay; the
        new submission writes its own ``submitted`` entry.
        """
        self._append(
            {"kind": "replayed", "job": job_id, "as": new_job_id},
            sync=True,
        )

    def _append(self, record: Dict[str, Any], sync: bool) -> None:
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            if self._handle is None:
                self._handle = open(
                    self.path, "a", encoding="utf-8"
                )
            self._handle.write(line + "\n")
            self._handle.flush()
            self._unsynced += 1
            self._appends_since_compact += 1
            if sync or self._unsynced >= self._fsync_every:
                os.fsync(self._handle.fileno())
                self._unsynced = 0

    # -- replay / compaction ------------------------------------------

    def replay(self) -> List[JournalEntry]:
        """Fold the journal; return open entries in submission order.

        Tolerant by design: a torn final line (the normal artifact of
        dying mid-append) is dropped silently; any other undecodable
        line is skipped with a warning.
        """
        self.last_replay_lines = 0
        if not self.path.exists():
            return []
        try:
            raw = self.path.read_bytes()
        except OSError as error:
            logger.warning(
                "could not read job journal %s: %s", self.path, error
            )
            return []
        lines = raw.split(b"\n")
        # A well-formed journal ends with a newline, so the final
        # split element is empty; anything else is a torn tail.
        torn_tail = lines and lines[-1] != b""
        open_entries: Dict[str, JournalEntry] = {}
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            self.last_replay_lines += 1
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("journal line must be an object")
                kind = record["kind"]
                job_id = str(record["job"])
            except (ValueError, KeyError) as error:
                if torn_tail and index == len(lines) - 1:
                    continue  # dying mid-append is not corruption
                logger.warning(
                    "skipping corrupt journal line %d in %s: %s",
                    index + 1, self.path, error,
                )
                continue
            if kind == "submitted":
                spec = record.get("spec")
                client_id = record.get("client")
                priority = record.get("priority")
                open_entries[job_id] = JournalEntry(
                    job_id=job_id,
                    key=record.get("key"),
                    spec=spec if isinstance(spec, dict) else None,
                    shard=record.get("shard"),
                    point_timeout=record.get("point_timeout"),
                    client_id=(
                        str(client_id) if client_id is not None
                        else None
                    ),
                    priority=(
                        str(priority) if priority is not None
                        else None
                    ),
                )
            elif kind in ("terminal", "replayed"):
                open_entries.pop(job_id, None)
            else:
                logger.warning(
                    "skipping unknown journal record kind %r in %s",
                    kind, self.path,
                )
        return list(open_entries.values())

    def compact(self, open_entries: List[JournalEntry]) -> None:
        """Atomically rewrite the journal to just ``open_entries``.

        Called after replay so the file does not grow without bound
        across restarts.  The rewrite is tmp-file + ``os.replace``;
        a crash mid-compaction leaves the old journal intact.
        """
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
                self._unsynced = 0
            tmp = self.path.with_name(self.path.name + ".tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                for entry in open_entries:
                    handle.write(
                        json.dumps(entry.to_dict(), sort_keys=True)
                        + "\n"
                    )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            self._appends_since_compact = 0
            self.compactions += 1

    def compact_if_needed(
        self, open_entries: List[JournalEntry], threshold: int
    ) -> bool:
        """Compact when the journal has grown past ``threshold`` lines.

        The trigger is dead weight, not size: at startup the line
        count just replayed, at runtime the appends since the last
        compaction — either way a journal holding at most
        ``threshold`` live-or-settled lines is left alone, so steady
        low-traffic servers never pay the rewrite.  Returns whether a
        compaction ran.
        """
        grown = max(
            self.last_replay_lines, self._appends_since_compact
        )
        if grown <= max(0, int(threshold)):
            return False
        self.compact(open_entries)
        self.last_replay_lines = 0
        return True

    def close(self) -> None:
        """Flush, fsync, and release the append handle."""
        with self._lock:
            if self._handle is None:
                return
            self._handle.flush()
            if self._unsynced:
                os.fsync(self._handle.fileno())
                self._unsynced = 0
            self._handle.close()
            self._handle = None
