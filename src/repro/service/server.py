"""The long-lived exploration job server.

The paper's workload is interactive: an engineer sweeps TAM budgets
over an SOC, looks at the result, and immediately submits a variant.
Paying process-pool startup and wrapper-table construction per
invocation dominates that loop, so :class:`ExplorationServer` keeps
both resident:

* one persistent :class:`~repro.engine.batch.BatchRunner` (pool
  workers stay warm across jobs, their table caches extend rather
  than rebuild, and an optional ``cache_dir`` makes the tables
  outlive the server itself);
* a FIFO job queue drained by a dispatcher thread, with job IDs,
  status/result polling, cancellation of queued jobs, and per-job
  structured failure records (the runner runs with
  ``on_error="record"``, so one bad grid point cannot take down a
  whole submission);
* **result memoization**: a grid identical to one already completed
  — same SOCs by content, same widths, counts and options — is
  answered instantly from the finished job, without touching the
  queue or the pool.

The server is transport-agnostic; :mod:`repro.service.ipc` puts a
line-oriented JSON socket in front of it and
:mod:`repro.service.client` speaks that protocol.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api.envelopes import JobEvent
from repro.api.specs import GridSpec, jobs_canonical_key
from repro.engine.batch import (
    BatchJob,
    BatchResult,
    BatchRunner,
    FailedPoint,
    align_point_telemetry,
    normalize_point_timeout,
    split_results,
)
from repro.exceptions import (
    OverloadedError,
    QuotaExceededError,
    ReproError,
    ServiceError,
    ServiceRejectionError,
    UnauthorizedError,
)
from repro.obs.warehouse import RunWarehouse, warehouse_for
from repro.report.serialize import (
    failed_point_to_dict,
    sweep_point_to_dict,
)
from repro.retry import backoff_schedule
from repro.service.journal import JOURNAL_NAME, JobJournal, JournalEntry
from repro.service.store import GridMemo
from repro.service.tenancy import (
    ANONYMOUS_CLIENT,
    AdmissionQueue,
    ClientAccount,
    ClientIdentity,
    PRIORITIES,
    TOKENS_NAME,
    TokenRegistry,
    priority_rank,
)

logger = logging.getLogger(__name__)

#: Job lifecycle states, in order of progress.  ``cancelled`` is
#: reachable only from ``queued`` — a running grid is not interrupted.
#: ``shed`` is the overload variant of ``cancelled``: a queued job
#: evicted by the admission controller to make room for
#: higher-priority work when the bounded queue is full.
JOB_STATUSES: Tuple[str, ...] = (
    "queued", "running", "done", "failed", "cancelled", "shed",
)

#: States from which a job record will never change again.
TERMINAL_STATUSES: Tuple[str, ...] = (
    "done", "failed", "cancelled", "shed",
)

#: Consecutive-overload backoff hints (seconds): the ``retry_after``
#: a rejected client is told grows with each back-to-back overload
#: rejection and resets once any submission is admitted again.
_RETRY_AFTER = backoff_schedule(6, base=0.25, cap=5.0)


def grid_payload(
    jobs: Sequence[BatchJob], results: Sequence[BatchResult]
) -> Dict[str, Any]:
    """Serialize a finished grid: per-point records plus failures.

    The one wire/persistence form of a grid's results — what the IPC
    ``result`` op returns and what :class:`~repro.service.store.
    GridMemo` stores, so a memo entry written by one server answers a
    client of another byte-for-byte.
    """
    points: List[Dict[str, Any]] = []
    failures: List[Dict[str, Any]] = []
    for job, result in zip(jobs, results):
        if isinstance(result, FailedPoint):
            failures.append(failed_point_to_dict(result))
        else:
            points.append(
                dict(sweep_point_to_dict(result), soc=job.soc.name)
            )
    return {"points": points, "failures": failures}


def _point_event(
    record: "JobRecord",
    index: int,
    total: int,
    result: BatchResult,
    metrics: Optional[Dict[str, Any]] = None,
    seq: Optional[int] = None,
) -> JobEvent:
    """One grid point's completion as a streamable :class:`JobEvent`.

    ``metrics`` (a serialized per-point
    :class:`~repro.obs.metrics.MetricsSnapshot` delta) rides inside
    the free-form payload dict — the envelope's locked field set
    (RPR004) is untouched.  ``seq`` is the event's position in the
    stream; it equals ``index`` only while every event is a point
    event (``mode="search"`` points interleave ``incumbent`` events,
    so the live stream passes the append position explicitly).
    """
    if isinstance(result, FailedPoint):
        kind, payload = "failed", failed_point_to_dict(result)
    else:
        kind, payload = "point", dict(
            sweep_point_to_dict(result),
            soc=record.jobs[index].soc.name,
        )
    if metrics is not None:
        payload = dict(payload, metrics=metrics)
    return JobEvent(
        job_id=record.job_id,
        seq=index if seq is None else seq,
        kind=kind,
        index=index,
        total=total,
        payload=payload,
    )


def _incumbent_payloads(
    soc_name: str, search: Any
) -> List[Dict[str, Any]]:
    """The ``incumbent`` event payloads of one finished search point.

    One record per strict improvement in the merged island
    trajectory, in interleave order — what ``submit --stream`` and
    ``tail`` render as the live convergence trail.  ``search`` is the
    point's :class:`repro.search.SearchResult` (or ``None`` for
    exact-tier and failed points, yielding no events).
    """
    if search is None:
        return []
    bound = search.certificate.bound
    return [
        {
            "soc": soc_name,
            "eval": eval_index,
            "island": island_index,
            "time": testing_time,
            "bound": bound,
            "gap": testing_time / bound - 1.0,
        }
        for eval_index, island_index, testing_time
        in search.trajectory
    ]


@dataclass
class JobRecord:
    """One submitted grid and everything known about it.

    Mutable by design — the dispatcher thread advances ``status`` and
    fills in ``results``/``events``/``error`` under the server's
    lock.  ``key`` is the grid's canonical content hash (the memo
    key); ``payload`` is set instead of ``results`` when the record
    was answered from the *persisted* memo of an earlier server
    process, where only the serialized form survives.
    """

    job_id: str
    jobs: Tuple[BatchJob, ...]
    status: str = "queued"
    cached: bool = False
    key: Optional[str] = None
    #: Intra-job sharding hint from the submission's runner options
    #: (``None`` = the runner's own policy).  Pure execution
    #: strategy: not part of ``key``, so any setting memo-hits.
    shard: "Union[int, str, None]" = None
    #: Per-point wall-clock deadline hint (seconds) from the
    #: submission's runner options; like ``shard``, pure execution
    #: strategy excluded from ``key``.
    point_timeout: Optional[float] = None
    #: The submitting tenant and the priority class this job drains
    #: at.  Execution policy only — neither is part of ``key``, so
    #: identical grids memo-hit across clients.
    client_id: str = "anonymous"
    priority: str = "normal"
    #: Per-client concurrency ceiling (grid points in flight on the
    #: pool at once) from the client's quota; ``None`` = uncapped.
    max_concurrent: Optional[int] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    results: Optional[List[BatchResult]] = None
    payload: Optional[Dict[str, Any]] = None
    events: List[JobEvent] = field(default_factory=list)
    error: Optional[str] = None
    #: The run's own serialized metrics delta (what this grid cost,
    #: not the runner's lifetime totals), set when the grid finishes.
    metrics: Optional[Dict[str, Any]] = None

    @property
    def is_terminal(self) -> bool:
        """True once the record will never change again."""
        return self.status in TERMINAL_STATUSES

    def snapshot(self) -> Dict[str, object]:
        """Plain-data status view (no result payload), lock-free safe."""
        info: Dict[str, object] = {
            "job": self.job_id,
            "status": self.status,
            "cached": self.cached,
            "num_jobs": len(self.jobs),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "client": self.client_id,
            "priority": self.priority,
        }
        if self.results is not None:
            points, failures = split_results(self.results)
            info["num_points"] = len(points)
            info["num_failures"] = len(failures)
        elif self.payload is not None:
            info["num_points"] = len(self.payload["points"])
            info["num_failures"] = len(self.payload["failures"])
        if self.error is not None:
            info["error"] = self.error
        if self.metrics is not None:
            info["metrics"] = self.metrics
        return info


class ExplorationServer:
    """A resident worker service over the batch engine.

    Parameters
    ----------
    runner:
        The :class:`~repro.engine.batch.BatchRunner` executing grids.
        When ``None`` one is built from the remaining parameters,
        persistent and with ``on_error="record"`` — the policies a
        long-lived service wants.
    max_workers:
        Pool size for the built runner (``None`` = one per CPU,
        ``1`` = inline execution in the dispatcher thread).
    cache_dir:
        Optional persistent table store directory for the built
        runner (see :class:`repro.service.store.TableStore`).
    retries:
        Per-point retry budget for the built runner.
    share_tables:
        Ship each grid's dense time matrices to the pool workers over
        shared memory (see :class:`~repro.engine.batch.BatchRunner`)
        instead of letting every worker build a private table copy.
        On by default; segments live until :meth:`shutdown`.
    max_records:
        Retention bound for *terminal* job records (done / failed /
        cancelled).  ``None`` (default) keeps every record for the
        server's lifetime; with a bound, each submission evicts the
        oldest terminal records beyond it, so a long-lived server's
        memory stays flat.  Queued and running jobs are never
        evicted, and an evicted grid's results remain answerable
        from the persisted memo when a ``cache_dir`` is configured.
    require_auth:
        Enable the tenancy layer: submissions must authenticate via
        a bearer token resolved against ``tokens_path``.  Off by
        default — the anonymous single-trust service is unchanged.
    tokens_path:
        The ``tokens.json`` registry (see
        :class:`repro.service.tenancy.TokenRegistry`).  Defaults to
        ``tokens.json`` next to the cache directory; required (here
        or via ``cache_dir``) when ``require_auth`` is set.
    max_queue_depth:
        Bound on the total admission queue.  When full, an arriving
        submission either sheds the newest queued job of a strictly
        lower priority class or is rejected with a typed
        :class:`~repro.exceptions.OverloadedError` carrying a
        ``retry_after`` hint.  ``None`` (default) = unbounded.
    journal_compact_threshold:
        Compact the job journal at startup when replay folded more
        than this many lines (and count compactions in
        ``info()['health']``).  ``0`` compacts whenever the journal
        is non-trivial.
    """

    def __init__(
        self,
        runner: Optional[BatchRunner] = None,
        max_workers: Optional[int] = None,
        cache_dir: Union[str, Path, None] = None,
        retries: int = 0,
        share_tables: bool = True,
        max_records: Optional[int] = None,
        require_auth: bool = False,
        tokens_path: Union[str, Path, None] = None,
        max_queue_depth: Optional[int] = None,
        journal_compact_threshold: int = 256,
    ) -> None:
        if runner is None:
            runner = BatchRunner(
                max_workers=max_workers,
                on_error="record",
                retries=retries,
                cache_dir=cache_dir,
                persistent=True,
                share_tables=share_tables,
            )
        if max_records is not None and max_records < 1:
            raise ServiceError(
                f"max_records must be >= 1 or None, got {max_records}"
            )
        self.runner = runner
        self.max_records = max_records
        #: Persisted grid memo, next to the runner's table store —
        #: the cross-restart half of result memoization.
        self.grid_memo: Optional[GridMemo] = None
        if self.runner.cache_dir is not None:
            self.grid_memo = GridMemo(
                Path(self.runner.cache_dir) / "grid-memo"
            )
        #: Run warehouse next to the table store: every grid this
        #: server finishes lands there with its metrics and spans,
        #: queryable later by ``repro-tam report``.
        self.warehouse: Optional[RunWarehouse] = warehouse_for(
            self.runner.cache_dir
        )
        #: Durable job journal next to the table store: every
        #: accepted submission and terminal outcome, replayed on
        #: startup so a killed server loses no jobs.
        self.journal: Optional[JobJournal] = None
        if self.runner.cache_dir is not None:
            # The table store creates this directory lazily; the
            # journal cannot — its very first append must succeed.
            Path(self.runner.cache_dir).mkdir(
                parents=True, exist_ok=True
            )
            self.journal = JobJournal(
                Path(self.runner.cache_dir) / JOURNAL_NAME
            )
        #: Tenancy: the token registry (when auth is on), per-client
        #: live accounting, and the priority-classed admission queue
        #: replacing the old FIFO.
        self.token_registry: Optional[TokenRegistry] = None
        if require_auth:
            if tokens_path is None:
                if self.runner.cache_dir is None:
                    raise ServiceError(
                        "require_auth needs a tokens_path (or a "
                        "cache_dir to find tokens.json next to)"
                    )
                tokens_path = (
                    Path(self.runner.cache_dir) / TOKENS_NAME
                )
            self.token_registry = TokenRegistry.load(tokens_path)
        self.require_auth = require_auth
        self.journal_compact_threshold = int(journal_compact_threshold)
        self._records: Dict[str, JobRecord] = {}
        self._memo: Dict[str, str] = {}
        self._queue = AdmissionQueue(max_depth=max_queue_depth)
        self._accounts: Dict[str, ClientAccount] = {}
        self._overload_streak = 0
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._counter = 0
        self.memo_hits = 0
        self.records_evicted = 0
        self.jobs_shed = 0
        self._dispatcher = threading.Thread(
            target=self._drain, name="repro-exploration-dispatcher",
            daemon=True,
        )
        # Replay before the dispatcher starts: recovered jobs enqueue
        # in their original submission order, ahead of anything a
        # client submits after startup.
        if self.journal is not None:
            self._replay_journal()
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # Submission and queries
    # ------------------------------------------------------------------
    def submit(
        self,
        jobs: Union[GridSpec, Sequence[BatchJob]],
        client: Optional[ClientIdentity] = None,
        priority: Optional[str] = None,
        preadmitted: bool = False,
    ) -> JobRecord:
        """Enqueue a grid; returns its (possibly pre-answered) record.

        The canonical submission is a :class:`repro.api.GridSpec`;
        a raw job sequence is still accepted and hashes to the same
        canonical key the spec would.  An empty grid is rejected.

        ``client`` is the authenticated tenant the submission runs
        as (default: the unlimited anonymous identity — the
        pre-tenancy behavior); ``priority`` may *lower* the job
        below the client's class.  Admission is checked in order:
        grid size against the client's quota, queued-job count
        against its quota, then the bounded queue — a full queue
        sheds the newest strictly-lower-priority queued job, or
        rejects this arrival with a typed
        :class:`~repro.exceptions.OverloadedError` and a
        ``retry_after`` hint.  ``preadmitted`` (journal replay only)
        skips quota and overload checks: recovered work was already
        admitted once.

        A grid whose :func:`~repro.api.specs.jobs_canonical_key`
        matches a previously *completed* clean submission is answered
        from memo — first the in-process memo (sharing the finished
        result objects), then, when a ``cache_dir`` is configured,
        the memo persisted by *any* earlier server process on that
        directory.  Either way the returned record is already
        ``done``, flagged ``cached``, and the queue and the pool are
        never touched (memo hits cost no queue quota).
        """
        identity = ANONYMOUS_CLIENT if client is None else client
        try:
            effective = identity.effective_priority(priority)
        except UnauthorizedError:
            self.note_rejection(identity, "unauthorized")
            raise
        shard: Union[int, str, None] = None
        point_timeout: Optional[float] = None
        spec_dict: Optional[Dict[str, Any]] = None
        if isinstance(jobs, GridSpec):
            job_tuple = tuple(jobs.jobs())
            hints = jobs.runner_options()
            shard = hints.get("shard")
            # Validated at the boundary: a bad hint answers the
            # submitter, instead of failing the job at dispatch.
            point_timeout = normalize_point_timeout(
                hints.get("point_timeout")
            )
            spec_dict = jobs.to_dict()
        else:
            job_tuple = tuple(jobs)
        if not job_tuple:
            raise ServiceError("cannot submit an empty grid")
        key = jobs_canonical_key(job_tuple)
        quota = identity.quota
        shed_job_id: Optional[str] = None
        with self._lock:
            account = self._account_locked(identity)
            if not preadmitted and quota.max_grid_size is not None \
                    and len(job_tuple) > quota.max_grid_size:
                account.rejected_quota += 1
                self.runner.metrics.counter(
                    "service.rejected_quota"
                ).inc()
                raise QuotaExceededError(
                    f"grid of {len(job_tuple)} points exceeds client "
                    f"{identity.client_id!r} max_grid_size "
                    f"{quota.max_grid_size}"
                )
            self._counter += 1
            job_id = f"job-{self._counter:04d}"
            memo_id = self._memo.get(key)
            if memo_id is not None and memo_id in self._records:
                source = self._records[memo_id]
                record = JobRecord(
                    job_id=job_id,
                    jobs=job_tuple,
                    status="done",
                    cached=True,
                    key=key,
                    client_id=identity.client_id,
                    priority=effective,
                    started_at=source.started_at,
                    finished_at=source.finished_at,
                    results=source.results,
                    payload=source.payload,
                    metrics=source.metrics,
                )
                self._records[job_id] = record
                self.memo_hits += 1
                account.submitted += 1
                account.done += 1
                self.runner.metrics.counter("service.memo_hits").inc()
                self._evict_locked(keep=job_id)
                self._journal_closed(record, spec_dict)
                return record
            payload = (
                self.grid_memo.load(key)
                if self.grid_memo is not None else None
            )
            if payload is not None:
                record = JobRecord(
                    job_id=job_id,
                    jobs=job_tuple,
                    status="done",
                    cached=True,
                    key=key,
                    client_id=identity.client_id,
                    priority=effective,
                    finished_at=time.time(),
                    payload=payload,
                )
                self._records[job_id] = record
                self._memo[key] = job_id
                self.memo_hits += 1
                account.submitted += 1
                account.done += 1
                self.runner.metrics.counter("service.memo_hits").inc()
                self._evict_locked(keep=job_id)
                self._journal_closed(record, spec_dict)
                return record
            if not preadmitted and quota.max_queued_jobs is not None \
                    and account.queued >= quota.max_queued_jobs:
                account.rejected_quota += 1
                self.runner.metrics.counter(
                    "service.rejected_quota"
                ).inc()
                raise QuotaExceededError(
                    f"client {identity.client_id!r} already has "
                    f"{account.queued} queued job(s) "
                    f"(max_queued_jobs {quota.max_queued_jobs})"
                )
            if not preadmitted and self._queue.is_full():
                shed_job_id = self._shed_for_locked(effective)
                if shed_job_id is None and self._queue.is_full():
                    streak = min(
                        self._overload_streak, len(_RETRY_AFTER) - 1
                    )
                    retry_after = _RETRY_AFTER[streak]
                    self._overload_streak += 1
                    account.rejected_overload += 1
                    self.runner.metrics.counter(
                        "service.rejected_overloaded"
                    ).inc()
                    raise OverloadedError(
                        f"admission queue is full "
                        f"({self._queue.max_depth} jobs) and nothing "
                        f"below priority {effective!r} is queued; "
                        f"retry in {retry_after:.2f}s",
                        retry_after=retry_after,
                    )
            record = JobRecord(
                job_id=job_id, jobs=job_tuple, key=key, shard=shard,
                point_timeout=point_timeout,
                client_id=identity.client_id,
                priority=effective,
                max_concurrent=quota.max_concurrent_points,
            )
            self._records[job_id] = record
            account.submitted += 1
            account.queued += 1
            self._overload_streak = 0
            self._evict_locked(keep=job_id)
            # Durability point: the submission is journaled (and
            # fsynced) before the caller ever learns the job id, so
            # an accepted job survives any crash after this line.
            self._journal_submitted(record, spec_dict)
        if shed_job_id is not None:
            self._journal_terminal(shed_job_id, "shed")
        self._queue.push(record.job_id, record.priority)
        return record

    # ------------------------------------------------------------------
    # Tenancy plumbing
    # ------------------------------------------------------------------
    def authenticate(self, token: Optional[str]) -> ClientIdentity:
        """Resolve a bearer token to an identity (IPC entry point).

        With auth off every token — including none — resolves to the
        anonymous identity, exactly the pre-tenancy service.
        """
        if self.token_registry is None:
            return ANONYMOUS_CLIENT
        try:
            return self.token_registry.authenticate(token)
        except UnauthorizedError:
            self.runner.metrics.counter(
                "service.rejected_unauthorized"
            ).inc()
            raise

    def note_rejection(
        self, identity: ClientIdentity, code: str
    ) -> None:
        """Count one policy rejection against ``identity``."""
        counter = {
            "unauthorized": "service.rejected_unauthorized",
            "over_quota": "service.rejected_quota",
            "overloaded": "service.rejected_overloaded",
        }[code]
        self.runner.metrics.counter(counter).inc()
        with self._lock:
            account = self._account_locked(identity)
            if code == "unauthorized":
                account.rejected_unauthorized += 1
            elif code == "over_quota":
                account.rejected_quota += 1
            else:
                account.rejected_overload += 1

    def _account_locked(
        self, identity: ClientIdentity
    ) -> ClientAccount:
        """The live account for ``identity`` (caller holds the lock)."""
        account = self._accounts.get(identity.client_id)
        if account is None:
            account = ClientAccount(identity=identity)
            self._accounts[identity.client_id] = account
        return account

    def _shed_for_locked(self, incoming: str) -> Optional[str]:
        """Evict one queued job strictly below ``incoming`` priority.

        Caller holds the lock.  Returns the shed job id (its terminal
        journal entry is the caller's job, outside the lock), or
        ``None`` when nothing sheddable is queued — including the
        race where the dispatcher popped the candidate first, which
        simply means the queue has room again.
        """
        candidate = self._queue.shed_candidate(incoming)
        if candidate is None:
            return None
        shed_id, shed_priority = candidate
        if not self._queue.remove(shed_id, shed_priority):
            return None
        shed_record = self._records.get(shed_id)
        if shed_record is None or shed_record.status != "queued":
            return None
        shed_record.status = "shed"
        shed_record.finished_at = time.time()
        shed_account = self._accounts.get(shed_record.client_id)
        if shed_account is not None:
            shed_account.queued -= 1
            shed_account.shed += 1
        self.jobs_shed += 1
        self.runner.metrics.counter("service.jobs_shed").inc()
        self._done.notify_all()
        return shed_id

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------
    def _journal_submitted(
        self, record: JobRecord, spec_dict: Optional[Dict[str, Any]]
    ) -> None:
        """Append one accepted submission; never fails the submit."""
        if self.journal is None:
            return
        try:
            self.journal.record_submitted(JournalEntry(
                job_id=record.job_id,
                key=record.key,
                spec=spec_dict,
                shard=record.shard,
                point_timeout=record.point_timeout,
                client_id=record.client_id,
                priority=record.priority,
            ))
        except OSError as error:
            self._journal_degraded(record.job_id, error)

    def _journal_closed(
        self, record: JobRecord, spec_dict: Optional[Dict[str, Any]]
    ) -> None:
        """Journal a submission answered instantly from memo."""
        if self.journal is None:
            return
        try:
            self.journal.record_submitted(JournalEntry(
                job_id=record.job_id, key=record.key, spec=spec_dict,
                client_id=record.client_id,
                priority=record.priority,
            ))
            self.journal.record_terminal(
                record.job_id, record.status
            )
        except OSError as error:
            self._journal_degraded(record.job_id, error)

    def _journal_terminal(self, job_id: str, status: str) -> None:
        """Append one terminal transition; never fails the job."""
        if self.journal is None:
            return
        try:
            self.journal.record_terminal(job_id, status)
        except OSError as error:
            self._journal_degraded(job_id, error)

    def _journal_degraded(self, job_id: str, error: OSError) -> None:
        """A journal write failed: log, count, keep serving."""
        logger.warning(
            "journal write for %s failed (durability degraded): %s",
            job_id, error,
        )
        self.runner.metrics.counter("service.journal_errors").inc()

    def _replay_journal(self) -> None:
        """Resubmit every journaled job that never reached terminal.

        Runs once at startup, before the dispatcher.  Open entries
        are deduplicated by canonical key (several crashed
        submissions of the same grid replay as one job — and if the
        grid finished before the crash, the persisted
        :class:`~repro.service.store.GridMemo` answers it instantly),
        then the journal is compacted to just the still-open work.
        """
        assert self.journal is not None
        entries = self.journal.replay()
        replayed_keys: Dict[str, str] = {}
        for entry in entries:
            if entry.key is not None and entry.key in replayed_keys:
                self.journal.record_replayed(
                    entry.job_id, replayed_keys[entry.key]
                )
                continue
            if entry.spec is None:
                # Raw-job submissions journal without a typed spec —
                # there is nothing to rebuild them from.
                logger.warning(
                    "journaled job %s has no spec; cannot replay",
                    entry.job_id,
                )
                self.runner.metrics.counter(
                    "service.journal_unreplayable"
                ).inc()
                self._journal_terminal(entry.job_id, "lost")
                continue
            identity = self._replay_identity(entry)
            priority = entry.priority
            if priority not in PRIORITIES or priority_rank(
                priority
            ) < priority_rank(identity.priority):
                # Garbage in the journal, or the client's class was
                # demoted between restarts: run at the current class
                # rather than losing recovered work to a rejection.
                priority = None
            try:
                spec = GridSpec.from_dict(entry.spec)
                record = self.submit(
                    spec,
                    client=identity,
                    priority=priority,
                    preadmitted=True,
                )
            except ReproError as error:
                logger.warning(
                    "could not replay journaled job %s: %s",
                    entry.job_id, error,
                )
                self.runner.metrics.counter(
                    "service.journal_unreplayable"
                ).inc()
                self._journal_terminal(entry.job_id, "lost")
                continue
            logger.info(
                "journal replay: %s resubmitted as %s (%s)",
                entry.job_id, record.job_id, record.status,
            )
            self.journal.record_replayed(entry.job_id, record.job_id)
            self.runner.metrics.counter(
                "service.journal_replays"
            ).inc()
            if entry.key is not None:
                replayed_keys[entry.key] = record.job_id
        if entries or self.journal.path.exists():
            # Auto-compaction: only rewrite the file once its dead
            # weight (replayed-and-settled lines) crosses the
            # threshold, so small journals restart without paying an
            # fsync'd rewrite every time.
            try:
                if self.journal.compact_if_needed(
                    self.journal.replay(),
                    self.journal_compact_threshold,
                ):
                    self.runner.metrics.counter(
                        "service.journal_compactions"
                    ).inc()
            except OSError as error:
                self._journal_degraded("compact", error)

    def _replay_identity(self, entry: JournalEntry) -> ClientIdentity:
        """The identity a journaled submission replays as.

        Preference order: the token registry's current entry for the
        journaled client name (quota edits between restarts apply),
        then a bare identity carrying the journaled name/priority
        (auth off, or a client since removed — its accounting still
        reattaches), then anonymous for pre-tenancy journals.
        """
        if entry.client_id is None:
            return ANONYMOUS_CLIENT
        if self.token_registry is not None:
            known = self.token_registry.identity_for(entry.client_id)
            if known is not None:
                return known
        try:
            return ClientIdentity(
                client_id=entry.client_id,
                priority=entry.priority or "normal",
            )
        except ReproError:
            return ANONYMOUS_CLIENT

    def _evict_locked(self, keep: Optional[str] = None) -> None:
        """Drop oldest terminal records beyond ``max_records``.

        Caller holds the lock.  ``keep`` shields the record being
        created right now.  Dropping a record also drops the
        in-memory memo entries pointing at it; the persisted memo
        (when configured) still answers those grids.
        """
        if self.max_records is None:
            return
        terminal = [
            record for record in self._records.values()
            if record.is_terminal
        ]
        excess = len(terminal) - self.max_records
        if excess <= 0:
            return
        candidates = sorted(
            (record for record in terminal if record.job_id != keep),
            key=lambda record: (record.finished_at or 0.0),
        )
        for record in candidates[:excess]:
            del self._records[record.job_id]
            self.records_evicted += 1
            self.runner.metrics.counter(
                "service.records_evicted"
            ).inc()
            stale = [
                memo_key for memo_key, memo_id in self._memo.items()
                if memo_id == record.job_id
            ]
            for memo_key in stale:
                del self._memo[memo_key]

    def record(self, job_id: str) -> JobRecord:
        """The record for ``job_id``; unknown IDs raise."""
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return record

    def status(self, job_id: str) -> Dict[str, object]:
        """Plain-data status snapshot of ``job_id``."""
        return self.record(job_id).snapshot()

    def results(self, job_id: str) -> List[BatchResult]:
        """The finished results of ``job_id``, as live objects.

        Raises :class:`~repro.exceptions.ServiceError` unless the job
        is ``done`` — poll :meth:`status` or block on :meth:`wait`
        first.  A record answered from the *persisted* memo of an
        earlier server process only has the serialized form — use
        :meth:`result_payload` for those (the IPC layer always does).
        """
        record = self.record(job_id)
        if record.status != "done" or record.results is None:
            if record.status == "done" and record.payload is not None:
                raise ServiceError(
                    f"job {job_id} was answered from the persisted "
                    f"memo; only the serialized payload is available "
                    f"(use result_payload)"
                )
            raise ServiceError(
                f"job {job_id} has no results (status: {record.status})"
            )
        return record.results

    def result_payload(self, job_id: str) -> Dict[str, Any]:
        """The finished grid of ``job_id`` in serialized form.

        ``{"points": [...], "failures": [...]}`` — identical whether
        the grid ran here, memo-hit in process, or was restored from
        the persisted memo after a restart.
        """
        record = self.record(job_id)
        if record.status != "done":
            raise ServiceError(
                f"job {job_id} has no results (status: {record.status})"
            )
        if record.payload is not None:
            return record.payload
        if record.results is None:
            raise ServiceError(
                f"job {job_id} has no results (status: {record.status})"
            )
        return grid_payload(record.jobs, record.results)

    def events(
        self,
        job_id: str,
        start: int = 0,
        timeout: Optional[float] = None,
    ) -> Iterator[JobEvent]:
        """Yield ``job_id``'s per-point events from ``start`` onwards.

        Blocks between events while the grid is running and returns
        once the record is terminal and every recorded event has been
        yielded — the push-style alternative to poll/wait.  For a
        terminal record with no recorded events (a memo hit, or a
        grid restored from the persisted memo), events are
        synthesized from the stored results so consumers see the
        same per-point stream either way (synthetic streams carry
        only terminal point events — a ``mode="search"`` point's
        ``incumbent`` trail exists live but is not reconstructed
        from the memo).  A ``timeout`` (seconds) bounds the total
        wait; expiry simply ends the stream.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        next_seq = start
        while True:
            with self._done:
                record = self._records.get(job_id)
                if record is None:
                    raise ServiceError(f"unknown job {job_id!r}")
                if record.is_terminal and not record.events:
                    pending = self._synthetic_events(record)[next_seq:]
                    terminal = True
                else:
                    pending = list(record.events[next_seq:])
                    terminal = record.is_terminal
                if not pending and not terminal:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            return
                    self._done.wait(timeout=remaining)
                    continue
            for event in pending:
                yield event
            next_seq += len(pending)
            if terminal:
                return

    def _synthetic_events(self, record: JobRecord) -> List[JobEvent]:
        """Per-point events reconstructed from a finished record."""
        events: List[JobEvent] = []
        if record.results is not None:
            total = len(record.jobs)
            for index, result in enumerate(record.results):
                events.append(_point_event(record, index, total, result))
            return events
        if record.payload is None:
            return events
        entries = (
            [("point", point) for point in record.payload["points"]]
            + [("failed", failure)
               for failure in record.payload["failures"]]
        )
        total = len(entries)
        for index, (kind, payload) in enumerate(entries):
            events.append(JobEvent(
                job_id=record.job_id, seq=index, kind=kind,
                index=index, total=total, payload=payload,
            ))
        return events

    def wait(
        self, job_id: str, timeout: Optional[float] = None
    ) -> JobRecord:
        """Block until ``job_id`` reaches a terminal state.

        Returns the record either way; check ``status`` afterwards
        when a ``timeout`` (seconds) is given, since expiry simply
        returns the still-running record.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._done:
            while True:
                record = self._records.get(job_id)
                if record is None:
                    raise ServiceError(f"unknown job {job_id!r}")
                if record.is_terminal:
                    return record
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return record
                self._done.wait(timeout=remaining)

    def cancel(self, job_id: str) -> bool:
        """Cancel ``job_id`` if still queued; True when it was.

        A running grid is never interrupted (its pool workers hold
        partial state worth keeping warm); terminal jobs are
        unaffected.
        """
        with self._done:
            record = self._records.get(job_id)
            if record is None:
                raise ServiceError(f"unknown job {job_id!r}")
            if record.status != "queued":
                return False
            record.status = "cancelled"
            record.finished_at = time.time()
            self._queue.remove(job_id, record.priority)
            account = self._accounts.get(record.client_id)
            if account is not None:
                account.queued -= 1
                account.cancelled += 1
            self._done.notify_all()
        self._journal_terminal(job_id, "cancelled")
        return True

    def info(self) -> Dict[str, object]:
        """Server-wide counters for monitoring and tests."""
        queue_depth = self._queue.depth()
        self.runner.metrics.gauge("service.queue_depth").set(
            queue_depth
        )
        snapshot = self.runner.metrics.snapshot()
        pool_restarts = snapshot.counter("engine.pool_restarts")
        points_timed_out = snapshot.counter("engine.points_timed_out")
        journal_errors = snapshot.counter("service.journal_errors")
        quarantined = snapshot.counter("store.quarantined")
        degraded = bool(
            pool_restarts or points_timed_out
            or journal_errors or quarantined
        )
        health = {
            # "degraded" means the server *recovered* from something
            # (restarted a pool, quarantined a store entry, timed out
            # a point) — results stay correct, but an operator should
            # look at why.
            "status": "degraded" if degraded else "ok",
            "journal": self.journal is not None,
            "pool_restarts": pool_restarts,
            "points_timed_out": points_timed_out,
            "shard_retries": snapshot.counter("engine.shard_retries"),
            "journal_replays": snapshot.counter(
                "service.journal_replays"
            ),
            "journal_errors": journal_errors,
            "journal_compactions": snapshot.counter(
                "service.journal_compactions"
            ),
            "quarantined_entries": quarantined,
            "faults_injected": snapshot.counter("faults.injected"),
        }
        with self._lock:
            by_status: Dict[str, int] = {}
            for record in self._records.values():
                by_status[record.status] = (
                    by_status.get(record.status, 0) + 1
                )
            return {
                "jobs": len(self._records),
                "by_status": by_status,
                "memo_hits": self.memo_hits,
                "pools_started": self.runner.pools_started,
                "jobs_sharded": self.runner.jobs_sharded,
                "shm_fallbacks": self.runner.shm_fallbacks,
                "max_records": self.max_records,
                "records_evicted": self.records_evicted,
                "persistent_memo": self.grid_memo is not None,
                "queue_depth": queue_depth,
                "max_queue_depth": self._queue.max_depth,
                "auth": self.require_auth,
                "jobs_shed": self.jobs_shed,
                "clients": {
                    client_id: account.snapshot()
                    for client_id, account
                    in sorted(self._accounts.items())
                },
                "warehouse": self.warehouse is not None,
                "health": health,
                "search": {
                    "points": snapshot.counter("search.points"),
                    "evals": snapshot.counter("search.evals"),
                    "improvements": snapshot.counter(
                        "search.improvements"
                    ),
                    "islands_run": snapshot.counter(
                        "search.islands_run"
                    ),
                    "jobs_fanned": snapshot.counter(
                        "engine.jobs_search_fanned"
                    ),
                    "last_gap": snapshot.gauge("search.gap"),
                },
                "metrics": snapshot.to_dict(),
            }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop the dispatcher and release the runner's pool.

        Still-queued jobs are transitioned to ``cancelled`` (and
        their waiters woken) — they will never run; a grid already
        running finishes first when ``wait`` is True.
        """
        self._stop.set()
        if wait and self._dispatcher.is_alive():
            self._dispatcher.join()
        cancelled: List[str] = []
        with self._done:
            for record in self._records.values():
                if record.status == "queued":
                    record.status = "cancelled"
                    record.finished_at = time.time()
                    self._queue.remove(
                        record.job_id, record.priority
                    )
                    account = self._accounts.get(record.client_id)
                    if account is not None:
                        account.queued -= 1
                        account.cancelled += 1
                    cancelled.append(record.job_id)
            self._done.notify_all()
        for job_id in cancelled:
            self._journal_terminal(job_id, "cancelled")
        self.runner.close()
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "ExplorationServer":
        """Context-manager entry: the server itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: orderly :meth:`shutdown`."""
        self.shutdown()

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        """Dispatcher loop: execute queued grids until stopped.

        Jobs come off the admission queue weighted-fair by priority
        class, not FIFO — see
        :class:`repro.service.tenancy.AdmissionQueue`.
        """
        while not self._stop.is_set():
            job_id = self._queue.pop(timeout=0.05)
            if job_id is None:
                continue
            with self._lock:
                record = self._records[job_id]
                if record.status != "queued":
                    continue  # cancelled/shed while waiting
                record.status = "running"
                record.started_at = time.time()
                account = self._accounts.get(record.client_id)
                if account is not None:
                    account.queued -= 1
                    account.running += 1
            results: List[BatchResult] = []
            total = len(record.jobs)
            try:
                # Streamed, not batched: each finished point becomes
                # a JobEvent immediately, so `events` consumers watch
                # the grid progress instead of polling `status`.
                for index, result in enumerate(
                    self.runner.run_iter(
                        list(record.jobs), shard=record.shard,
                        point_timeout=record.point_timeout,
                        max_concurrent=record.max_concurrent,
                    )
                ):
                    results.append(result)
                    telemetry = None
                    if index < len(self.runner.last_run_telemetry):
                        telemetry = (
                            self.runner.last_run_telemetry[index]
                        )
                    incumbents = _incumbent_payloads(
                        record.jobs[index].soc.name,
                        getattr(result, "search", None),
                    )
                    with self._done:
                        # The convergence trail precedes its point's
                        # terminal event; every seq is the append
                        # position, which is what the `events` op's
                        # `from` cursor slices by.
                        for payload in incumbents:
                            record.events.append(JobEvent(
                                job_id=record.job_id,
                                seq=len(record.events),
                                kind="incumbent",
                                index=index,
                                total=total,
                                payload=payload,
                            ))
                        record.events.append(_point_event(
                            record, index, total, result,
                            metrics=(
                                telemetry.metrics.to_dict()
                                if telemetry is not None else None
                            ),
                            seq=len(record.events),
                        ))
                        self._done.notify_all()
            except Exception as error:  # noqa: BLE001 - job boundary
                logger.error(
                    "grid %s failed: %s: %s",
                    job_id, type(error).__name__, error,
                )
                with self._done:
                    record.status = "failed"
                    record.error = f"{type(error).__name__}: {error}"
                    record.finished_at = time.time()
                    account = self._accounts.get(record.client_id)
                    if account is not None:
                        account.running -= 1
                        account.failed += 1
                    self._done.notify_all()
                self._journal_terminal(job_id, "failed")
                continue
            # Only clean grids are memoized: a recorded failure may
            # be transient (killed worker, truncated solve), and
            # serving it from cache forever would make resubmission
            # useless as a retry path.  Persisting happens *before*
            # the record turns terminal, so a client that observed
            # `done` can rely on the memo surviving a restart.
            clean = not split_results(results)[1]
            if clean and record.key is not None \
                    and self.grid_memo is not None:
                self.grid_memo.save(
                    record.key,
                    grid_payload(record.jobs, results),
                    num_jobs=total,
                )
            run_metrics = (
                self.runner.last_run_metrics.to_dict()
                if self.runner.last_run_metrics is not None else None
            )
            if self.warehouse is not None and record.key is not None:
                # Every finished grid lands in the warehouse — clean
                # or not — with its per-point telemetry and run-level
                # spans.  A write failure must not fail the job.
                try:
                    self.warehouse.record_grid(
                        record.key,
                        grid_payload(record.jobs, results),
                        job_id=job_id,
                        source="service",
                        client=record.client_id,
                        metrics=run_metrics,
                        point_telemetry=align_point_telemetry(
                            results, self.runner.last_run_telemetry
                        ),
                        run_spans=self.runner.last_run_spans,
                    )
                except Exception as error:  # noqa: BLE001 - telemetry
                    logger.warning(
                        "warehouse write for %s failed: %s",
                        job_id, error,
                    )
            with self._done:
                record.results = results
                record.metrics = run_metrics
                record.status = "done"
                record.finished_at = time.time()
                if clean and record.key is not None:
                    self._memo[record.key] = job_id
                account = self._accounts.get(record.client_id)
                if account is not None:
                    account.running -= 1
                    account.done += 1
                self._done.notify_all()
            self._journal_terminal(job_id, "done")
