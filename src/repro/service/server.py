"""The long-lived exploration job server.

The paper's workload is interactive: an engineer sweeps TAM budgets
over an SOC, looks at the result, and immediately submits a variant.
Paying process-pool startup and wrapper-table construction per
invocation dominates that loop, so :class:`ExplorationServer` keeps
both resident:

* one persistent :class:`~repro.engine.batch.BatchRunner` (pool
  workers stay warm across jobs, their table caches extend rather
  than rebuild, and an optional ``cache_dir`` makes the tables
  outlive the server itself);
* a FIFO job queue drained by a dispatcher thread, with job IDs,
  status/result polling, cancellation of queued jobs, and per-job
  structured failure records (the runner runs with
  ``on_error="record"``, so one bad grid point cannot take down a
  whole submission);
* **result memoization**: a grid identical to one already completed
  — same SOCs by content, same widths, counts and options — is
  answered instantly from the finished job, without touching the
  queue or the pool.

The server is transport-agnostic; :mod:`repro.service.ipc` puts a
line-oriented JSON socket in front of it and
:mod:`repro.service.client` speaks that protocol.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.batch import (
    BatchJob,
    BatchResult,
    BatchRunner,
    split_results,
)
from repro.exceptions import ServiceError

#: Job lifecycle states, in order of progress.  ``cancelled`` is
#: reachable only from ``queued`` — a running grid is not interrupted.
JOB_STATUSES: Tuple[str, ...] = (
    "queued", "running", "done", "failed", "cancelled",
)

#: States from which a job record will never change again.
TERMINAL_STATUSES: Tuple[str, ...] = ("done", "failed", "cancelled")


@dataclass
class JobRecord:
    """One submitted grid and everything known about it.

    Mutable by design — the dispatcher thread advances ``status`` and
    fills in ``results``/``error`` under the server's lock.
    """

    job_id: str
    jobs: Tuple[BatchJob, ...]
    status: str = "queued"
    cached: bool = False
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    results: Optional[List[BatchResult]] = None
    error: Optional[str] = None

    @property
    def is_terminal(self) -> bool:
        """True once the record will never change again."""
        return self.status in TERMINAL_STATUSES

    def snapshot(self) -> Dict[str, object]:
        """Plain-data status view (no result payload), lock-free safe."""
        info: Dict[str, object] = {
            "job": self.job_id,
            "status": self.status,
            "cached": self.cached,
            "num_jobs": len(self.jobs),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.results is not None:
            points, failures = split_results(self.results)
            info["num_points"] = len(points)
            info["num_failures"] = len(failures)
        if self.error is not None:
            info["error"] = self.error
        return info


class ExplorationServer:
    """A resident worker service over the batch engine.

    Parameters
    ----------
    runner:
        The :class:`~repro.engine.batch.BatchRunner` executing grids.
        When ``None`` one is built from the remaining parameters,
        persistent and with ``on_error="record"`` — the policies a
        long-lived service wants.
    max_workers:
        Pool size for the built runner (``None`` = one per CPU,
        ``1`` = inline execution in the dispatcher thread).
    cache_dir:
        Optional persistent table store directory for the built
        runner (see :class:`repro.service.store.TableStore`).
    retries:
        Per-point retry budget for the built runner.
    share_tables:
        Ship each grid's dense time matrices to the pool workers over
        shared memory (see :class:`~repro.engine.batch.BatchRunner`)
        instead of letting every worker build a private table copy.
        On by default; segments live until :meth:`shutdown`.
    """

    def __init__(
        self,
        runner: Optional[BatchRunner] = None,
        max_workers: Optional[int] = None,
        cache_dir: Union[str, Path, None] = None,
        retries: int = 0,
        share_tables: bool = True,
    ):
        if runner is None:
            runner = BatchRunner(
                max_workers=max_workers,
                on_error="record",
                retries=retries,
                cache_dir=cache_dir,
                persistent=True,
                share_tables=share_tables,
            )
        self.runner = runner
        self._records: Dict[str, JobRecord] = {}
        self._memo: Dict[Tuple[BatchJob, ...], str] = {}
        self._queue: "queue.Queue[str]" = queue.Queue()
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._counter = 0
        self.memo_hits = 0
        self._dispatcher = threading.Thread(
            target=self._drain, name="repro-exploration-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # Submission and queries
    # ------------------------------------------------------------------
    def submit(self, jobs: Sequence[BatchJob]) -> JobRecord:
        """Enqueue a grid; returns its (possibly pre-answered) record.

        An empty grid is rejected.  A grid whose job tuple matches a
        previously *completed* submission is answered from memo: the
        returned record is already ``done``, flagged ``cached``, and
        shares the finished results — the queue and the pool are
        never touched.
        """
        job_tuple = tuple(jobs)
        if not job_tuple:
            raise ServiceError("cannot submit an empty grid")
        with self._lock:
            self._counter += 1
            job_id = f"job-{self._counter:04d}"
            memo_id = self._memo.get(job_tuple)
            if memo_id is not None:
                source = self._records[memo_id]
                record = JobRecord(
                    job_id=job_id,
                    jobs=job_tuple,
                    status="done",
                    cached=True,
                    started_at=source.started_at,
                    finished_at=source.finished_at,
                    results=source.results,
                )
                self._records[job_id] = record
                self.memo_hits += 1
                return record
            record = JobRecord(job_id=job_id, jobs=job_tuple)
            self._records[job_id] = record
        self._queue.put(job_id)
        return record

    def record(self, job_id: str) -> JobRecord:
        """The record for ``job_id``; unknown IDs raise."""
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return record

    def status(self, job_id: str) -> Dict[str, object]:
        """Plain-data status snapshot of ``job_id``."""
        return self.record(job_id).snapshot()

    def results(self, job_id: str) -> List[BatchResult]:
        """The finished results of ``job_id``.

        Raises :class:`~repro.exceptions.ServiceError` unless the job
        is ``done`` — poll :meth:`status` or block on :meth:`wait`
        first.
        """
        record = self.record(job_id)
        if record.status != "done" or record.results is None:
            raise ServiceError(
                f"job {job_id} has no results (status: {record.status})"
            )
        return record.results

    def wait(
        self, job_id: str, timeout: Optional[float] = None
    ) -> JobRecord:
        """Block until ``job_id`` reaches a terminal state.

        Returns the record either way; check ``status`` afterwards
        when a ``timeout`` (seconds) is given, since expiry simply
        returns the still-running record.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._done:
            while True:
                record = self._records.get(job_id)
                if record is None:
                    raise ServiceError(f"unknown job {job_id!r}")
                if record.is_terminal:
                    return record
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return record
                self._done.wait(timeout=remaining)

    def cancel(self, job_id: str) -> bool:
        """Cancel ``job_id`` if still queued; True when it was.

        A running grid is never interrupted (its pool workers hold
        partial state worth keeping warm); terminal jobs are
        unaffected.
        """
        with self._done:
            record = self._records.get(job_id)
            if record is None:
                raise ServiceError(f"unknown job {job_id!r}")
            if record.status != "queued":
                return False
            record.status = "cancelled"
            record.finished_at = time.time()
            self._done.notify_all()
            return True

    def info(self) -> Dict[str, object]:
        """Server-wide counters for monitoring and tests."""
        with self._lock:
            by_status: Dict[str, int] = {}
            for record in self._records.values():
                by_status[record.status] = (
                    by_status.get(record.status, 0) + 1
                )
            return {
                "jobs": len(self._records),
                "by_status": by_status,
                "memo_hits": self.memo_hits,
                "pools_started": self.runner.pools_started,
            }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop the dispatcher and release the runner's pool.

        Still-queued jobs are transitioned to ``cancelled`` (and
        their waiters woken) — they will never run; a grid already
        running finishes first when ``wait`` is True.
        """
        self._stop.set()
        if wait and self._dispatcher.is_alive():
            self._dispatcher.join()
        with self._done:
            for record in self._records.values():
                if record.status == "queued":
                    record.status = "cancelled"
                    record.finished_at = time.time()
            self._done.notify_all()
        self.runner.close()

    def __enter__(self) -> "ExplorationServer":
        """Context-manager entry: the server itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: orderly :meth:`shutdown`."""
        self.shutdown()

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        """Dispatcher loop: execute queued grids until stopped."""
        while not self._stop.is_set():
            try:
                job_id = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            with self._lock:
                record = self._records[job_id]
                if record.status != "queued":
                    continue  # cancelled while waiting
                record.status = "running"
                record.started_at = time.time()
            try:
                results = self.runner.run(list(record.jobs))
            except Exception as error:  # noqa: BLE001 - job boundary
                with self._done:
                    record.status = "failed"
                    record.error = f"{type(error).__name__}: {error}"
                    record.finished_at = time.time()
                    self._done.notify_all()
                continue
            with self._done:
                record.results = results
                record.status = "done"
                record.finished_at = time.time()
                # Only clean grids are memoized: a recorded failure
                # may be transient (killed worker, truncated solve),
                # and serving it from cache forever would make
                # resubmission useless as a retry path.
                if not split_results(results)[1]:
                    self._memo[record.jobs] = job_id
                self._done.notify_all()
