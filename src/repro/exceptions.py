"""Exception hierarchy for the ``repro`` package.

Every error deliberately raised by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing genuine programming errors (``TypeError`` and
friends propagate untouched).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ValidationError(ReproError):
    """A data object (core, SOC, TAM architecture, ...) is malformed."""


class ParseError(ReproError):
    """An input file could not be parsed.

    Attributes
    ----------
    line_number:
        1-based line on which the problem was detected, or ``None`` when
        the error is not tied to a specific line.
    """

    def __init__(self, message: str, line_number: "int | None" = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class InfeasibleError(ReproError):
    """A model has no feasible solution (e.g. contradictory constraints)."""


class SolverLimitError(ReproError):
    """An exact solver exhausted its node or time budget.

    Solvers in this package normally degrade gracefully (returning the
    incumbent with ``optimal=False``); this exception is reserved for
    callers that explicitly request hard-failure semantics.
    """


class ConfigurationError(ReproError):
    """An algorithm was configured with invalid options."""


class DeadlineError(ReproError):
    """A grid point exceeded its per-point wall-clock deadline.

    Raised by the batch engine (under ``on_error="raise"``) when a
    pool worker's result does not arrive within the configured
    ``point_timeout``.  The deadline is execution strategy, not part
    of any job's canonical identity — re-running the same point with
    a longer (or no) deadline yields the same result as an
    uninterrupted run.
    """


class ServiceError(ReproError):
    """An exploration-service request failed.

    Raised client-side when the server answers ``ok: false`` (unknown
    job, malformed request, unloadable SOC source, ...) or when the
    connection itself breaks mid-request.
    """


class ServiceRejectionError(ServiceError):
    """A request was *refused by policy*, not failed by a bug.

    The typed rejection family of the multi-tenant service: every
    subclass carries a stable machine-readable ``code`` (what the IPC
    layer puts in the response's ``code`` field) and an optional
    ``retry_after`` hint in seconds.  Rejections are deliberate,
    deterministic answers — never dropped connections, never
    tracebacks — so clients can distinguish "fix your credentials"
    (:class:`UnauthorizedError`), "you are over *your* limit"
    (:class:`QuotaExceededError`, retrying later helps once your own
    jobs drain) and "the *server* is saturated"
    (:class:`OverloadedError`, back off for ``retry_after``).
    """

    code = "rejected"

    def __init__(
        self, message: str, retry_after: "float | None" = None
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class UnauthorizedError(ServiceRejectionError):
    """The request's bearer token is missing, unknown, or names a
    client that may not touch the addressed job."""

    code = "unauthorized"


class QuotaExceededError(ServiceRejectionError):
    """The client's own quota (queued jobs, grid size) is exhausted."""

    code = "over_quota"


class OverloadedError(ServiceRejectionError):
    """The server's bounded admission queue is full and the request
    lost the shedding decision; retry after ``retry_after`` seconds."""

    code = "overloaded"


class ServiceTransportError(ServiceError):
    """The service *connection* failed, not the request.

    The subclass the client raises when the socket drops, the peer
    closes mid-stream, or a response line cannot be decoded — the
    failures that are safe to retry on a fresh connection.  A server
    that answered ``ok: false`` keeps raising plain
    :class:`ServiceError`: retrying those would just repeat the
    refusal.  The distinction is what lets the event stream's
    auto-reconnect (``ServiceClient.events(reconnect=True)``) resume
    a dropped stream from its sequence cursor without ever retrying a
    genuine rejection.
    """
