"""Pluggable metaheuristics over width partitions.

Two strategies, both operating directly on the paper's decision
variable — a width partition of the TAM budget ``W`` into ``B``
buses — with the core→bus assignment delegated to the dense kernel's
``Core_assign`` (:func:`repro.engine.kernel.sweep_assign`) at scoring
time:

* ``"sa"`` — simulated annealing with a geometric reheat schedule
  over the partition-move neighborhood (shift a wire between buses,
  split a bus, merge two buses — the moves that connect the whole
  partition space while staying inside the explored TAM-count range);
* ``"ga"`` — a steady-state genetic algorithm whose crossover is
  partition-aware: children inherit whole *parts* (bus widths) from
  both parents and are repaired to the exact budget, so building
  blocks are the bus widths themselves rather than bit positions.

Determinism contract (enforced by RPR001 on this package): every
stochastic choice draws from the caller's seeded ``random.Random``
instance; there is no wall-clock, no global ``random``, and no set
iteration in here.  A strategy run is a pure function of
(seed, instance, budget).

Strategies never terminate on their own: they loop until the
evaluator raises the driver's termination signal (the anytime budget
contract lives in :mod:`repro.search.driver`, not here).
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Sequence, Tuple

from repro.exceptions import ConfigurationError

#: A candidate: bus widths, sorted descending, summing to ``W``.
Partition = Tuple[int, ...]

#: Scores one candidate (SOC testing time, cycles).  Raises the
#: driver's termination signal when the anytime budget expires.
Evaluator = Callable[[Partition], int]

#: SA cooling: temperature decays geometrically and reheats every
#: ``SA_REHEAT_PERIOD`` steps, so long runs keep escaping basins.
SA_COOLING = 0.99
SA_REHEAT_PERIOD = 400
#: Initial temperature as a fraction of the first candidate's time.
SA_INITIAL_TEMP_FRACTION = 0.05

#: Steady-state GA shape.
GA_POPULATION = 12
GA_TOURNAMENT = 3
GA_CROSSOVER_RATE = 0.9
GA_MUTATION_RATE = 0.6


def random_partition(
    rng: random.Random, total_width: int, count: int
) -> Partition:
    """A uniform-ish random partition of ``total_width`` into ``count``.

    Starts every bus at one wire and scatters the remaining
    ``W - B`` wires one at a time — every partition of the count is
    reachable, narrow-part-heavy ones slightly favored (fine for a
    seed population).
    """
    if not 1 <= count <= total_width:
        raise ConfigurationError(
            f"cannot split width {total_width} into {count} buses"
        )
    parts = [1] * count
    for _ in range(total_width - count):
        parts[rng.randrange(count)] += 1
    parts.sort(reverse=True)
    return tuple(parts)


def _repair(parts: List[int], total_width: int) -> Partition:
    """Adjust ``parts`` to sum exactly ``total_width``, each >= 1.

    Shrinks the widest part while over budget, widens the narrowest
    while under — deterministic, so crossover outcomes depend only on
    the sampled parts.
    """
    parts = sorted(parts, reverse=True)
    total = sum(parts)
    while total > total_width:
        parts[0] -= 1
        total -= 1
        parts.sort(reverse=True)
    while total < total_width:
        parts[-1] += 1
        total += 1
        parts.sort(reverse=True)
    return tuple(parts)


def mutate(
    rng: random.Random,
    widths: Partition,
    total_width: int,
    tam_counts: Sequence[int],
) -> Partition:
    """One partition-aware move; stays inside the explored counts.

    ``shift`` moves wires between two buses (count unchanged);
    ``split`` cuts one bus in two (count + 1); ``merge`` fuses two
    buses (count - 1).  Split/merge are only offered when the
    resulting count is itself in ``tam_counts``, so the certificate's
    range bound keeps covering everything the search can visit.
    """
    count = len(widths)
    moves = []
    donors = [index for index, part in enumerate(widths) if part > 1]
    if count > 1 and donors:
        moves.append("shift")
    if count + 1 in tam_counts and donors:
        moves.append("split")
    if count - 1 in tam_counts and count > 1:
        moves.append("merge")
    if not moves:
        return widths
    move = rng.choice(moves)
    parts = list(widths)
    if move == "shift":
        donor = rng.choice(donors)
        recipient = rng.randrange(count - 1)
        if recipient >= donor:
            recipient += 1
        amount = rng.randint(1, parts[donor] - 1)
        parts[donor] -= amount
        parts[recipient] += amount
    elif move == "split":
        donor = rng.choice(donors)
        cut = rng.randint(1, parts[donor] - 1)
        parts[donor] -= cut
        parts.append(cut)
    else:  # merge
        first, second = rng.sample(range(count), 2)
        parts[first] += parts[second]
        del parts[second]
    parts.sort(reverse=True)
    return tuple(parts)


def crossover(
    rng: random.Random,
    first: Partition,
    second: Partition,
    total_width: int,
) -> Partition:
    """Partition-aware recombination: inherit whole parts, then repair.

    The child takes one parent's bus count, samples that many parts
    from the pooled parts of *both* parents, and is repaired to the
    exact budget — bus widths (the building blocks the kernel scores)
    survive recombination intact wherever the budget allows.
    """
    count = len(first) if rng.random() < 0.5 else len(second)
    pool = list(first) + list(second)
    picks = rng.sample(range(len(pool)), count)
    return _repair([pool[index] for index in picks], total_width)


def run_sa(
    rng: random.Random,
    evaluate: Evaluator,
    total_width: int,
    tam_counts: Sequence[int],
) -> None:
    """Simulated annealing over the partition-move neighborhood."""
    current = random_partition(
        rng, total_width, rng.choice(list(tam_counts))
    )
    current_time = evaluate(current)
    initial_temp = max(
        1.0, current_time * SA_INITIAL_TEMP_FRACTION
    )
    step = 0
    while True:
        neighbor = mutate(rng, current, total_width, tam_counts)
        neighbor_time = evaluate(neighbor)
        delta = neighbor_time - current_time
        temperature = initial_temp * (
            SA_COOLING ** (step % SA_REHEAT_PERIOD)
        )
        if delta <= 0 or rng.random() < math.exp(
            -delta / max(temperature, 1e-9)
        ):
            current = neighbor
            current_time = neighbor_time
        step += 1


def _tournament(
    rng: random.Random, population: List[Tuple[int, Partition]]
) -> Tuple[int, Partition]:
    """Best of ``GA_TOURNAMENT`` sampled members (ties by widths)."""
    contenders = rng.sample(
        range(len(population)), min(GA_TOURNAMENT, len(population))
    )
    best = contenders[0]
    for index in contenders[1:]:
        if population[index] < population[best]:
            best = index
    return population[best]


def run_ga(
    rng: random.Random,
    evaluate: Evaluator,
    total_width: int,
    tam_counts: Sequence[int],
) -> None:
    """Steady-state GA: one child per step replaces the current worst."""
    counts = list(tam_counts)
    population: List[Tuple[int, Partition]] = []
    for slot in range(GA_POPULATION):
        candidate = random_partition(
            rng, total_width, counts[slot % len(counts)]
        )
        population.append((evaluate(candidate), candidate))
    while True:
        if rng.random() < GA_CROSSOVER_RATE:
            _, first = _tournament(rng, population)
            _, second = _tournament(rng, population)
            child = crossover(rng, first, second, total_width)
        else:
            _, child = _tournament(rng, population)
        if rng.random() < GA_MUTATION_RATE:
            child = mutate(rng, child, total_width, tam_counts)
        child_time = evaluate(child)
        worst = 0
        for index in range(1, len(population)):
            if population[index] > population[worst]:
                worst = index
        if (child_time, child) < population[worst]:
            population[worst] = (child_time, child)


#: The pluggable strategy registry; ``OptimizeSpec.search_strategy``
#: values resolve here (unknown names fail per grid point, like
#: ``enumerator``).
StrategyFn = Callable[
    [random.Random, Evaluator, int, Sequence[int]], None
]
STRATEGIES: Dict[str, StrategyFn] = {
    "sa": run_sa,
    "ga": run_ga,
}
