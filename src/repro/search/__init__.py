"""repro.search — the anytime metaheuristic optimizer tier.

The exact pipeline (``Partition_evaluate`` + branch-and-bound polish)
enumerates every width partition, so its cost explodes with the TAM
budget and count; this package is the third answer tier for
instances where exhaustion is unaffordable: a seeded, deterministic
anytime search over (partition, core→TAM assignment) that scores on
the same dense kernel, runs as islands under the batch engine's
process pool, and — crucially — reports a *certificate* (gap against
an admissible lower bound) rather than a bare incumbent.

Layering: this package sits on ``repro.engine.kernel`` and
``repro.api`` only; the batch engine, the analysis layer, and the
service integrate *it*, never the reverse.  See DESIGN.md §9 for the
architecture and the seed/determinism contract.
"""

from __future__ import annotations

from repro.search.certificate import (
    TERMINATIONS,
    SearchCertificate,
    range_lower_bound,
)
from repro.search.driver import (
    KEEP_TOP,
    NUM_ISLANDS,
    IslandPlan,
    IslandResult,
    IslandsRunner,
    SearchResult,
    island_plans,
    island_seed,
    merge_islands,
    polish_candidates,
    run_island,
    search_optimize,
)
from repro.search.strategies import (
    STRATEGIES,
    crossover,
    mutate,
    random_partition,
)

__all__ = [
    "TERMINATIONS",
    "SearchCertificate",
    "range_lower_bound",
    "KEEP_TOP",
    "NUM_ISLANDS",
    "IslandPlan",
    "IslandResult",
    "IslandsRunner",
    "SearchResult",
    "island_plans",
    "island_seed",
    "merge_islands",
    "polish_candidates",
    "run_island",
    "search_optimize",
    "STRATEGIES",
    "crossover",
    "mutate",
    "random_partition",
]
