"""Gap-vs-bound certificates for the anytime search tier.

An exact sweep proves optimality by exhaustion; the metaheuristic
tier cannot, so every search result instead carries a
:class:`SearchCertificate`: the incumbent makespan, an *admissible*
lower bound over the whole explored (partition, assignment) space,
and the relative gap between them.  A gap of zero is a proof — the
incumbent meets a bound no solution in the explored range can beat.

The bound is the dense kernel's column bound
(:func:`repro.assign.lower_bounds.column_lower_bound`) pushed over a
TAM-count *range*: for a fixed bus count ``B`` at budget ``W`` the
widest part any partition can have is ``W - B + 1``, and
:meth:`~repro.engine.kernel.DenseTimeMatrix.lower_bound_for_max` is
monotone non-increasing in the widest part, so
``lower_bound_for_max(W - B + 1, B)`` bounds *every* partition of
count ``B`` from below.  The range bound is the minimum over the
explored counts, optionally raised by a caller-supplied floor (the
instance-wide :func:`repro.analysis.certificates.global_lower_bound`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.engine.kernel import DenseTimeMatrix
from repro.exceptions import ConfigurationError, ValidationError

#: Values ``terminated_by`` may take — which clause of the anytime
#: budget contract ended the run.
TERMINATIONS = ("target_gap", "eval_budget", "time_budget")


@dataclass(frozen=True)
class SearchCertificate:
    """What a finished anytime search can prove about its incumbent.

    Attributes
    ----------
    testing_time:
        The incumbent SOC testing time (cycles).
    bound:
        Admissible lower bound over the explored TAM-count range (see
        :func:`range_lower_bound`).  Every solution the search could
        ever have returned is >= this, so ``gap`` is a sound quality
        guarantee, not a heuristic score.
    evals:
        Candidate partitions scored, summed over all islands.
    improvements:
        Length of the merged incumbent trajectory (strict drops).
    elapsed_seconds:
        Wall-clock spent (reporting only; never compared by tests).
    terminated_by:
        Which budget clause fired: ``"target_gap"``,
        ``"eval_budget"`` or ``"time_budget"``.
    """

    testing_time: int
    bound: int
    evals: int
    improvements: int
    elapsed_seconds: float
    terminated_by: str

    def __post_init__(self) -> None:
        if self.bound < 1:
            raise ValidationError(
                f"certificate bound must be >= 1, got {self.bound}"
            )
        if self.testing_time < self.bound:
            raise ValidationError(
                f"incumbent {self.testing_time} beats the admissible "
                f"bound {self.bound}; the bound is wrong"
            )
        if self.terminated_by not in TERMINATIONS:
            raise ValidationError(
                f"terminated_by must be one of {TERMINATIONS}, got "
                f"{self.terminated_by!r}"
            )

    @property
    def gap(self) -> float:
        """Relative optimality gap, ``testing_time / bound - 1`` (>= 0)."""
        return self.testing_time / self.bound - 1.0

    @property
    def is_provably_optimal(self) -> bool:
        """True when the incumbent *meets* the bound (gap exactly 0)."""
        return self.testing_time == self.bound


def range_lower_bound(
    matrix: DenseTimeMatrix,
    total_width: int,
    tam_counts: Sequence[int],
    floor: int = 0,
) -> int:
    """Admissible bound over every partition of any explored count.

    ``min_B lower_bound_for_max(W - B + 1, B)`` for the feasible
    counts (``B <= W``), raised to ``floor`` when the caller holds an
    instance-wide bound (e.g. :func:`repro.analysis.certificates.
    global_lower_bound`) that is tighter.
    """
    if total_width < 1:
        raise ConfigurationError(
            f"total_width must be >= 1, got {total_width}"
        )
    feasible = [
        count for count in tam_counts if 1 <= count <= total_width
    ]
    if not feasible:
        raise ConfigurationError(
            f"no feasible TAM count in {list(tam_counts)} for "
            f"W={total_width}"
        )
    bound = min(
        matrix.lower_bound_for_max(total_width - count + 1, count)
        for count in feasible
    )
    return max(bound, floor)
