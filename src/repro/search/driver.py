"""The anytime search driver: seeded islands, deterministic merge.

One search run is a fixed number of *islands* (:data:`NUM_ISLANDS`,
independent of how many pool workers execute them — the determinism
anchor), each an isolated strategy run over its own
``random.Random(island_seed(seed, index))``.  Islands score
candidates on the dense time matrix, record every strict incumbent
drop in a local trajectory, and optionally publish improvements to a
shared :class:`~repro.engine.shm.IncumbentBoard` slot so the parent
can observe live convergence.  Publication is **write-only**: unlike
the sharded exact sweep (whose forward-only reads are outcome-
neutral), SA acceptance and GA replacement are threshold-sensitive,
so an island never reads another island's incumbent — that is what
makes a fixed-seed run bit-identical across 1..N workers.

Budget contract (the anytime guarantee): an island stops the moment
its incumbent meets ``target_gap`` against the admissible range
bound, or its share of ``eval_budget`` is spent, or ``time_budget``
expires.  The first two are deterministic terminators; the wall
clock is a safety guard with the same caveat as ``exact_time_limit``
— bit-identity holds when the budgets are generous enough that a gap
or eval termination fires first (the defaults are).

The merge is pure arithmetic: best island by
``(testing_time, island_index)``, trajectories interleaved by
``(eval_index, island_index)`` and reduced to strict running-minimum
drops.  Re-running the islands in any order — or any worker
placement — reproduces the identical :class:`SearchResult`.
"""

from __future__ import annotations

import random
import time as _time
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api.specs import resolved_tam_counts
from repro.assign.exact import exact_assign
from repro.engine.kernel import (
    DenseTimeMatrix,
    KernelWorkspace,
    build_dense_matrix,
    sweep_assign,
)
from repro.exceptions import ConfigurationError
from repro.search.certificate import SearchCertificate, range_lower_bound
from repro.search.strategies import STRATEGIES, Partition
from repro.tam.assignment import AssignmentResult
from repro.wrapper.pareto import TimeTable

#: Islands per search run.  A *result-defining* constant: per-island
#: seeds and eval shares derive from it, so it is fixed here rather
#: than scaled to the worker count.
NUM_ISLANDS = 4

#: Distinct best partitions each island retains for the final exact
#: polish — the paper's wrong-partition anomaly applies verbatim to
#: the heuristic-scored search (the heuristically best partition is
#: not always the exactly best one), so the polish needs diversity.
KEEP_TOP = 8

#: Budgets for the final exact polish (per candidate).  Time is a
#: wall guard with the ``exact_time_limit`` caveat: bit-identity
#: assumes the node limit or completion fires first.
POLISH_NODE_LIMIT = 2_000_000
POLISH_TIME_LIMIT = 10.0

#: How often (in evals) the wall-clock guard is consulted.
_CLOCK_STRIDE = 64


def island_seed(seed: int, island_index: int) -> int:
    """The island's private RNG seed, derived, collision-free.

    A fixed affine mix keeps the derivation independent of Python's
    hash randomization (``PYTHONHASHSEED`` must never move a search
    result).
    """
    return (seed * 1_000_003 + island_index * 7_919 + 1) % (1 << 63)


@dataclass(frozen=True)
class IslandPlan:
    """Everything one island run needs, picklable for pool dispatch."""

    island_index: int
    strategy: str
    seed: int
    total_width: int
    tam_counts: Tuple[int, ...]
    eval_budget: int
    time_budget: float
    target_gap: float
    bound: int

    def __post_init__(self) -> None:
        if self.eval_budget < 1:
            raise ConfigurationError(
                f"island eval_budget must be >= 1, got "
                f"{self.eval_budget}"
            )
        if self.time_budget <= 0:
            raise ConfigurationError(
                f"island time_budget must be > 0, got "
                f"{self.time_budget}"
            )


@dataclass(frozen=True)
class IslandResult:
    """One island's outcome; the merge's unit of account.

    ``trajectory`` holds ``(eval_index, testing_time)`` pairs, one
    per strict improvement, ``eval_index`` counting this island's
    evaluations from 1.  ``kept`` is the island's :data:`KEEP_TOP`
    best *distinct* partitions (heuristic score ascending) — the
    candidate pool for the final exact polish.
    """

    island_index: int
    best: AssignmentResult
    evals: int
    trajectory: Tuple[Tuple[int, int], ...]
    terminated_by: str
    elapsed_seconds: float
    kept: Tuple[AssignmentResult, ...] = ()


@dataclass(frozen=True)
class SearchResult:
    """A finished anytime search: incumbent, certificate, provenance."""

    total_width: int
    tam_counts: Tuple[int, ...]
    strategy: str
    seed: int
    best: AssignmentResult
    certificate: SearchCertificate
    islands: Tuple[IslandResult, ...]
    #: Merged strict-improvement trail:
    #: ``(eval_index, island_index, testing_time)`` triples in
    #: interleave order — what the service streams as ``incumbent``
    #: events.
    trajectory: Tuple[Tuple[int, int, int], ...]

    @property
    def testing_time(self) -> int:
        return self.best.testing_time

    @property
    def partition(self) -> Tuple[int, ...]:
        return self.best.widths

    @property
    def num_tams(self) -> int:
        return len(self.best.widths)

    @property
    def gap(self) -> float:
        return self.certificate.gap


class _Terminated(Exception):
    """Control-flow signal: the anytime budget contract fired."""


class _IslandEvaluator:
    """Scores candidates, tracks the incumbent, enforces the budget.

    The strategy calls this as a plain function; termination is
    raised *after* the triggering evaluation is fully recorded, so
    the trajectory and eval count are exact regardless of which
    clause fired.
    """

    def __init__(
        self,
        matrix: DenseTimeMatrix,
        plan: IslandPlan,
        deadline: float,
        publish: Optional[Callable[[int], None]],
    ) -> None:
        self._matrix = matrix
        self._plan = plan
        self._deadline = deadline
        self._publish = publish
        self._workspace = KernelWorkspace()
        # Incumbent meeting this time has gap <= target_gap.
        self._target_time = plan.bound * (1.0 + plan.target_gap)
        self.evals = 0
        self.best: Optional[AssignmentResult] = None
        self.trajectory: List[Tuple[int, int]] = []
        self.terminated_by = "eval_budget"
        #: The KEEP_TOP best distinct partitions, (time, widths) asc.
        self.kept: List[AssignmentResult] = []

    def _offer(self, result: AssignmentResult) -> None:
        """Keep ``result`` if it improves the top-K distinct set."""
        kept = self.kept
        key = result.widths  # sweep candidates are already canonical
        for index, entry in enumerate(kept):
            if entry.widths == key:
                if result.testing_time < entry.testing_time:
                    del kept[index]
                    break
                return
        else:
            if len(kept) == KEEP_TOP and (
                result.testing_time, key
            ) >= (kept[-1].testing_time, kept[-1].widths):
                return
        position = 0
        while position < len(kept) and (
            kept[position].testing_time, kept[position].widths
        ) <= (result.testing_time, key):
            position += 1
        kept.insert(position, result)
        del kept[KEEP_TOP:]

    def __call__(self, widths: Partition) -> int:
        result = sweep_assign(
            self._matrix, widths, best_known=None,
            workspace=self._workspace,
        )
        assert result is not None  # no best_known => always completes
        self.evals += 1
        time = result.testing_time
        self._offer(result)
        if self.best is None or time < self.best.testing_time:
            self.best = result
            self.trajectory.append((self.evals, time))
            if self._publish is not None:
                self._publish(time)
        if self.best.testing_time <= self._target_time:
            self.terminated_by = "target_gap"
            raise _Terminated()
        if self.evals >= self._plan.eval_budget:
            self.terminated_by = "eval_budget"
            raise _Terminated()
        if (
            self.evals % _CLOCK_STRIDE == 0
            and _time.monotonic() > self._deadline
        ):
            self.terminated_by = "time_budget"
            raise _Terminated()
        return time


def run_island(
    matrix: DenseTimeMatrix,
    plan: IslandPlan,
    publish: Optional[Callable[[int], None]] = None,
) -> IslandResult:
    """Execute one island to budget exhaustion; pure in (plan, seed).

    ``publish`` (when given) receives each strict improvement's
    testing time — the :class:`~repro.engine.shm.IncumbentBoard`
    hook.  It must not feed anything back; see the module docstring.
    """
    try:
        strategy = STRATEGIES[plan.strategy]
    except KeyError:
        raise ConfigurationError(
            f"unknown search strategy {plan.strategy!r}; "
            f"choose from {sorted(STRATEGIES)}"
        ) from None
    start = _time.monotonic()
    rng = random.Random(island_seed(plan.seed, plan.island_index))
    evaluator = _IslandEvaluator(
        matrix, plan, start + plan.time_budget, publish
    )
    try:
        strategy(rng, evaluator, plan.total_width, plan.tam_counts)
    except _Terminated:
        pass
    assert evaluator.best is not None  # first eval always records
    return IslandResult(
        island_index=plan.island_index,
        best=evaluator.best,
        evals=evaluator.evals,
        trajectory=tuple(evaluator.trajectory),
        terminated_by=evaluator.terminated_by,
        elapsed_seconds=_time.monotonic() - start,
        kept=tuple(evaluator.kept),
    )


def polish_candidates(
    matrix: DenseTimeMatrix,
    islands: Sequence[IslandResult],
    incumbent: AssignmentResult,
    bound: int,
) -> AssignmentResult:
    """Exact branch-and-bound polish over the pooled kept partitions.

    The paper's wrong-partition anomaly carries over to the search
    tier: the partition with the best *heuristic* score is not always
    the one with the best *exact* assignment.  So instead of polishing
    only the merged incumbent, the :data:`KEEP_TOP` best distinct
    partitions pooled across all islands each get an exact
    ``P_AW`` solve, warm-started from their heuristic assignment.
    Deterministic: candidates are deduped and ordered by
    ``(heuristic time, widths)``, and the loop stops early once the
    incumbent meets the admissible ``bound`` (nothing can beat it).
    """
    pooled: Dict[Tuple[int, ...], AssignmentResult] = {}
    ordered = sorted(islands, key=lambda result: result.island_index)
    for island in ordered:
        for candidate in island.kept + (island.best,):
            held = pooled.get(candidate.widths)
            if (
                held is None
                or candidate.testing_time < held.testing_time
            ):
                pooled[candidate.widths] = candidate
    candidates = sorted(
        pooled.values(),
        key=lambda result: (result.testing_time, result.widths),
    )[:KEEP_TOP]
    best = incumbent
    for candidate in candidates:
        if best.testing_time <= bound:
            break
        exact = exact_assign(
            matrix.times_for(candidate.widths),
            candidate.widths,
            incumbent=candidate,
            node_limit=POLISH_NODE_LIMIT,
            time_limit=POLISH_TIME_LIMIT,
        )
        if exact.result.testing_time < best.testing_time:
            best = exact.result
    return best


def merge_islands(
    islands: Sequence[IslandResult],
) -> Tuple[
    AssignmentResult, Tuple[Tuple[int, int, int], ...], str
]:
    """Deterministic reduction of island outcomes.

    Returns the global best (ties to the lowest island index), the
    merged strict-improvement trajectory, and the aggregate
    termination clause.  Pure data arithmetic — callable on replayed
    or cached island results and guaranteed to reproduce the parent's
    answer.
    """
    if not islands:
        raise ConfigurationError("no island results to merge")
    ordered = sorted(islands, key=lambda result: result.island_index)
    best_island = min(
        ordered,
        key=lambda result: (
            result.best.testing_time, result.island_index
        ),
    )
    events = sorted(
        (eval_index, result.island_index, time)
        for result in ordered
        for eval_index, time in result.trajectory
    )
    merged: List[Tuple[int, int, int]] = []
    incumbent: Optional[int] = None
    for eval_index, island_index, time in events:
        if incumbent is None or time < incumbent:
            incumbent = time
            merged.append((eval_index, island_index, time))
    if any(
        result.terminated_by == "target_gap" for result in ordered
    ):
        terminated_by = "target_gap"
    elif all(
        result.terminated_by == "eval_budget" for result in ordered
    ):
        terminated_by = "eval_budget"
    else:
        terminated_by = "time_budget"
    return best_island.best, tuple(merged), terminated_by


def island_plans(
    total_width: int,
    tam_counts: Sequence[int],
    strategy: str,
    seed: int,
    eval_budget: int,
    time_budget: float,
    target_gap: float,
    bound: int,
    num_islands: int = NUM_ISLANDS,
) -> Tuple[IslandPlan, ...]:
    """The fixed island decomposition of one search run.

    ``eval_budget`` is split evenly (every island gets at least one
    evaluation); the remainder goes to the lowest-indexed islands so
    the split is deterministic and exhaustive.
    """
    if num_islands < 1:
        raise ConfigurationError(
            f"num_islands must be >= 1, got {num_islands}"
        )
    share, remainder = divmod(eval_budget, num_islands)
    return tuple(
        IslandPlan(
            island_index=index,
            strategy=strategy,
            seed=seed,
            total_width=total_width,
            tam_counts=tuple(tam_counts),
            eval_budget=max(1, share + (1 if index < remainder else 0)),
            time_budget=time_budget,
            target_gap=target_gap,
            bound=bound,
        )
        for index in range(num_islands)
    )


#: The pool-dispatch seam: the batch engine installs a callable that
#: fans the plans out to workers and returns their
#: :class:`IslandResult` s (any order); ``None`` runs them inline.
IslandsRunner = Callable[[Sequence[IslandPlan]], List[IslandResult]]


def search_optimize(
    tables: Optional[Dict[str, TimeTable]],
    total_width: int,
    num_tams: Union[int, Sequence[int], None] = None,
    strategy: str = "sa",
    seed: int = 0,
    time_budget: float = 5.0,
    eval_budget: int = 20000,
    target_gap: float = 0.0,
    matrix: Optional[DenseTimeMatrix] = None,
    floor_bound: int = 0,
    num_islands: int = NUM_ISLANDS,
    islands_runner: Optional[IslandsRunner] = None,
    core_order: Optional[Sequence[str]] = None,
) -> SearchResult:
    """Run one anytime search over (partition, assignment) space.

    Parameters mirror the ``mode="search"`` options of
    :class:`repro.api.specs.OptimizeSpec`; ``tables`` (keyed by core
    name, iterated in ``core_order`` — the SOC's core order — when
    given) or a pre-built ``matrix`` supply the scoring kernel, and
    ``floor_bound`` lets the caller raise the certificate bound with
    an instance-wide admissible bound.  ``islands_runner`` is the
    pool seam; inline execution is the semantic reference it must
    match bit-for-bit.
    """
    if matrix is None:
        if tables is None:
            raise ConfigurationError(
                "search_optimize needs tables or a dense matrix"
            )
        if core_order is not None:
            table_list = [tables[name] for name in core_order]
        else:
            table_list = list(tables.values())
        matrix = build_dense_matrix(table_list, total_width)
    counts = resolved_tam_counts(total_width, num_tams)
    feasible = tuple(
        count for count in counts if count <= total_width
    )
    if not feasible:
        raise ConfigurationError(
            f"no feasible TAM count in {list(counts)} for "
            f"W={total_width}"
        )
    if strategy not in STRATEGIES:
        raise ConfigurationError(
            f"unknown search strategy {strategy!r}; "
            f"choose from {sorted(STRATEGIES)}"
        )
    start = _time.monotonic()
    bound = range_lower_bound(
        matrix, total_width, feasible, floor=floor_bound
    )
    plans = island_plans(
        total_width, feasible, strategy, seed, eval_budget,
        time_budget, target_gap, bound, num_islands=num_islands,
    )
    if islands_runner is not None:
        islands = islands_runner(plans)
    else:
        islands = [run_island(matrix, plan) for plan in plans]
    best, trajectory, terminated_by = merge_islands(islands)
    best = polish_candidates(matrix, islands, best, bound)
    certificate = SearchCertificate(
        testing_time=best.testing_time,
        bound=bound,
        evals=sum(result.evals for result in islands),
        improvements=len(trajectory),
        elapsed_seconds=_time.monotonic() - start,
        terminated_by=terminated_by,
    )
    return SearchResult(
        total_width=total_width,
        tam_counts=feasible,
        strategy=strategy,
        seed=seed,
        best=best,
        certificate=certificate,
        islands=tuple(
            sorted(islands, key=lambda result: result.island_index)
        ),
        trajectory=trajectory,
    )
