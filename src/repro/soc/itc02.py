"""Reader/writer for an ITC'02-style ``.soc`` text format.

The ITC'02 SOC Test Benchmarks distributed ``.soc`` files describing
each SOC's cores.  This module implements a compact, line-oriented
dialect carrying exactly the fields the optimization needs:

.. code-block:: text

    # anything after '#' is a comment
    soc d695
    core c6288
        patterns   12
        inputs     32
        outputs    32
        bidirs     0
        scanchains 0
    end
    core s9234
        patterns   105
        inputs     36
        outputs    39
        scanchains 4 : 54 53 52 52
    end

Rules:

* ``soc <name>`` must appear once, before any core;
* each ``core <name> ... end`` block must contain ``patterns``; the
  terminal counts default to 0 and ``scanchains`` defaults to none;
* ``scanchains N : l1 l2 ... lN`` lists chain lengths after a colon;
  ``scanchains 0`` (no colon) declares a non-scan core;
* keywords are case-insensitive; indentation is free-form.

:func:`write_soc` emits this dialect and round-trips through
:func:`parse_soc` / :func:`load_soc` losslessly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.exceptions import ParseError
from repro.soc.core import Core
from repro.soc.soc import Soc

_CORE_KEYWORDS = {"patterns", "inputs", "outputs", "bidirs", "scanchains"}


def _strip_comment(line: str) -> str:
    """Drop everything after the first '#'."""
    hash_pos = line.find("#")
    if hash_pos >= 0:
        line = line[:hash_pos]
    return line.strip()


def _parse_int(token: str, line_number: int, what: str) -> int:
    try:
        return int(token)
    except ValueError:
        raise ParseError(f"expected integer for {what}, got {token!r}",
                         line_number) from None


def _parse_scanchains(tokens: List[str], line_number: int) -> List[int]:
    """Parse the tail of a ``scanchains`` line into chain lengths."""
    count = _parse_int(tokens[0], line_number, "scan chain count")
    if count == 0:
        if len(tokens) > 1:
            raise ParseError("'scanchains 0' takes no lengths", line_number)
        return []
    if len(tokens) < 2 or tokens[1] != ":":
        raise ParseError(
            "'scanchains N' must be followed by ': l1 l2 ... lN'",
            line_number,
        )
    lengths = [
        _parse_int(token, line_number, "scan chain length")
        for token in tokens[2:]
    ]
    if len(lengths) != count:
        raise ParseError(
            f"declared {count} scan chains but listed {len(lengths)} lengths",
            line_number,
        )
    return lengths


def parse_soc(text: str) -> Soc:
    """Parse the ``.soc`` dialect from a string into a :class:`Soc`."""
    soc_name: Optional[str] = None
    cores: List[Core] = []
    current: Optional[Dict[str, object]] = None

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line)
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0].lower()

        if keyword == "soc":
            if soc_name is not None:
                raise ParseError("duplicate 'soc' declaration", line_number)
            if current is not None:
                raise ParseError("'soc' inside a core block", line_number)
            if len(tokens) != 2:
                raise ParseError("'soc' takes exactly one name", line_number)
            soc_name = tokens[1]
        elif keyword == "core":
            if soc_name is None:
                raise ParseError("'core' before 'soc' declaration",
                                 line_number)
            if current is not None:
                raise ParseError("nested 'core' block (missing 'end'?)",
                                 line_number)
            if len(tokens) != 2:
                raise ParseError("'core' takes exactly one name", line_number)
            current = {"name": tokens[1], "bidirs": 0, "inputs": 0,
                       "outputs": 0, "scanchains": []}
        elif keyword == "end":
            if current is None:
                raise ParseError("'end' outside a core block", line_number)
            if "patterns" not in current:
                raise ParseError(
                    f"core {current['name']!r} missing 'patterns'",
                    line_number,
                )
            cores.append(
                Core(
                    name=str(current["name"]),
                    num_patterns=int(current["patterns"]),  # type: ignore[arg-type]
                    num_inputs=int(current["inputs"]),  # type: ignore[arg-type]
                    num_outputs=int(current["outputs"]),  # type: ignore[arg-type]
                    num_bidirs=int(current["bidirs"]),  # type: ignore[arg-type]
                    scan_chain_lengths=tuple(current["scanchains"]),  # type: ignore[arg-type]
                )
            )
            current = None
        elif keyword in _CORE_KEYWORDS:
            if current is None:
                raise ParseError(f"{keyword!r} outside a core block",
                                 line_number)
            if keyword == "scanchains":
                current["scanchains"] = _parse_scanchains(
                    tokens[1:], line_number
                )
            else:
                if len(tokens) != 2:
                    raise ParseError(f"{keyword!r} takes exactly one value",
                                     line_number)
                current[keyword] = _parse_int(tokens[1], line_number, keyword)
        else:
            raise ParseError(f"unknown keyword {tokens[0]!r}", line_number)

    if current is not None:
        raise ParseError(f"core {current['name']!r} not closed with 'end'")
    if soc_name is None:
        raise ParseError("no 'soc' declaration found")
    if not cores:
        raise ParseError(f"SOC {soc_name!r} declares no cores")
    return Soc(name=soc_name, cores=tuple(cores))


def load_soc(path: Union[str, Path]) -> Soc:
    """Load a ``.soc`` file from disk."""
    return parse_soc(Path(path).read_text())


def format_soc(soc: Soc) -> str:
    """Serialize ``soc`` to the ``.soc`` dialect."""
    lines = [f"soc {soc.name}"]
    for core in soc.cores:
        lines.append(f"core {core.name}")
        lines.append(f"    patterns   {core.num_patterns}")
        lines.append(f"    inputs     {core.num_inputs}")
        lines.append(f"    outputs    {core.num_outputs}")
        lines.append(f"    bidirs     {core.num_bidirs}")
        if core.is_scan_testable:
            lengths = " ".join(str(n) for n in core.scan_chain_lengths)
            lines.append(
                f"    scanchains {core.num_scan_chains} : {lengths}"
            )
        else:
            lines.append("    scanchains 0")
        lines.append("end")
    return "\n".join(lines) + "\n"


def write_soc(soc: Soc, path: Union[str, Path]) -> None:
    """Write ``soc`` to ``path`` in the ``.soc`` dialect."""
    Path(path).write_text(format_soc(soc))
