"""SOC p93791 — deterministic stand-in for the Philips SOC.

The paper (Table 14) publishes only ranges for p93791's 32 cores:

* 14 scan-testable logic cores — patterns 11..6127, functional I/Os
  109..813, scan chains 11..46, chain lengths 1..521;
* 18 memory cores — patterns 42..3085, functional I/Os 21..396,
  no scan.

We synthesize the SOC from exactly those ranges with a fixed seed and
calibrate the pattern counts so the test-complexity proxy lands near
93791.  p93791 is the largest and most logic-dominated of the three
Philips SOCs, which is why the paper's biggest CPU-time gaps between
the exhaustive method and the heuristic appear here.  See
DESIGN.md §4.1.
"""

from __future__ import annotations

from repro.soc.generator import CoreRanges, SocSpec, generate_soc
from repro.soc.soc import Soc

SPEC = SocSpec(
    name="p93791",
    num_logic_cores=14,
    num_memory_cores=18,
    logic=CoreRanges(
        patterns=(11, 6127),
        functional_ios=(109, 813),
        scan_chains=(11, 46),
        scan_lengths=(1, 521),
    ),
    memory=CoreRanges(
        patterns=(42, 3085),
        functional_ios=(21, 396),
    ),
    complexity_target=93791.0,
    # The paper's Tables 15-19 show p93791's testing time scaling down
    # to ~460-474k cycles at W=64, so no single core's floor
    # (patterns x (longest chain + 1)) may exceed that; the generator
    # caps chain lengths on high-pattern cores accordingly (within the
    # published 1..521 range).
    logic_floor_budget=460_000,
    seed=93791,
)


def build() -> Soc:
    """Build the p93791 stand-in (32 cores, deterministic)."""
    return generate_soc(SPEC)
