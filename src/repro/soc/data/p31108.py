"""SOC p31108 — deterministic stand-in for the Philips SOC.

The paper (Table 8) publishes only ranges for p31108's 19 cores:

* 4 scan-testable logic cores — patterns 210..745, functional I/Os
  109..428, scan chains 1..29, chain lengths 8..806;
* 15 memory cores — patterns 128..12236, functional I/Os 11..87,
  no scan.

We synthesize the SOC from exactly those ranges with a fixed seed and
calibrate the pattern counts so the test-complexity proxy lands near
31108.  The memory-heavy composition reproduces the paper's
qualitative behaviour for this SOC: a high-pattern, low-I/O memory
core becomes the testing-time bottleneck, so the SOC testing time
saturates once that core's bus is wide enough (Section 4.3).  See
DESIGN.md §4.1.
"""

from __future__ import annotations

from repro.soc.generator import CoreRanges, SocSpec, generate_soc
from repro.soc.soc import Soc

SPEC = SocSpec(
    name="p31108",
    num_logic_cores=4,
    num_memory_cores=15,
    logic=CoreRanges(
        patterns=(210, 745),
        functional_ios=(109, 428),
        scan_chains=(1, 29),
        scan_lengths=(8, 806),
    ),
    memory=CoreRanges(
        patterns=(128, 12236),
        functional_ios=(11, 87),
    ),
    complexity_target=31108.0,
    seed=31108,
)


def build() -> Soc:
    """Build the p31108 stand-in (19 cores, deterministic)."""
    return generate_soc(SPEC)
