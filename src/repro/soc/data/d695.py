"""SOC d695 — the academic benchmark from Duke University.

d695 consists of two ISCAS'85 combinational circuits (c6288, c7552)
and eight ISCAS'89 sequential circuits (s838, s9234, s38584, s13207,
s15850, s5378, s35932, s38417), each treated as an embedded core with
full scan.

The terminal counts and flip-flop totals below are the standard
published ISCAS statistics; the scan-chain splits and pattern counts
follow the ITC'02 benchmark conventions as closely as our offline
records allow (DESIGN.md §4.2).  The SOC's test-complexity proxy
evaluates to ≈ 695, consistent with its name.

Core numbering (1..10) matches the assignment vectors in the paper's
Tables 2 and 3.
"""

from __future__ import annotations

from repro.soc.core import Core
from repro.soc.soc import Soc


def _chains(count: int, total_cells: int) -> tuple:
    """Split ``total_cells`` flip-flops into ``count`` balanced chains."""
    base = total_cells // count
    extra = total_cells - base * count
    return tuple([base + 1] * extra + [base] * (count - extra))


def build() -> Soc:
    """Build SOC d695 (10 cores)."""
    cores = (
        # 1: c6288 — 16x16 multiplier, combinational.
        Core("c6288", num_patterns=12, num_inputs=32, num_outputs=32),
        # 2: c7552 — ALU/control, combinational.
        Core("c7552", num_patterns=73, num_inputs=207, num_outputs=108),
        # 3: s838 — small sequential core, one scan chain of 32 FFs.
        Core("s838", num_patterns=75, num_inputs=34, num_outputs=1,
             scan_chain_lengths=(32,)),
        # 4: s9234 — 211 FFs in 4 chains.
        Core("s9234", num_patterns=105, num_inputs=36, num_outputs=39,
             scan_chain_lengths=(54, 53, 52, 52)),
        # 5: s38584 — 1426 FFs in 32 chains.
        Core("s38584", num_patterns=110, num_inputs=38, num_outputs=304,
             scan_chain_lengths=_chains(32, 1426)),
        # 6: s13207 — 638 FFs in 16 chains.
        Core("s13207", num_patterns=234, num_inputs=62, num_outputs=152,
             scan_chain_lengths=_chains(16, 638)),
        # 7: s15850 — 534 FFs in 16 chains.
        Core("s15850", num_patterns=95, num_inputs=77, num_outputs=150,
             scan_chain_lengths=_chains(16, 534)),
        # 8: s5378 — 179 FFs in 4 chains.
        Core("s5378", num_patterns=97, num_inputs=35, num_outputs=49,
             scan_chain_lengths=_chains(4, 179)),
        # 9: s35932 — 1728 FFs in 32 chains of 54.
        Core("s35932", num_patterns=12, num_inputs=35, num_outputs=320,
             scan_chain_lengths=_chains(32, 1728)),
        # 10: s38417 — 1636 FFs in 32 chains.
        Core("s38417", num_patterns=68, num_inputs=28, num_outputs=106,
             scan_chain_lengths=_chains(32, 1636)),
    )
    return Soc(name="d695", cores=cores)
