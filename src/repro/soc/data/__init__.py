"""Benchmark SOCs used in the paper's evaluation (Section 4).

* :mod:`~repro.soc.data.d695` — the academic Duke benchmark, built
  from published ISCAS'85/89 circuit statistics;
* :mod:`~repro.soc.data.p21241`, :mod:`~repro.soc.data.p31108`,
  :mod:`~repro.soc.data.p93791` — deterministic stand-ins for the
  Philips SOCs, synthesized from the per-class data ranges the paper
  publishes (Tables 4, 8 and 14) and calibrated to the complexity
  number in each SOC's name.  See DESIGN.md §4 for the substitution
  rationale.

Use :func:`get_benchmark` / :func:`benchmark_names` for programmatic
access; every module also exposes a ``build()`` function.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.soc.soc import Soc
from repro.soc.data import d695, p21241, p31108, p93791

_REGISTRY: Dict[str, Callable[[], Soc]] = {
    "d695": d695.build,
    "p21241": p21241.build,
    "p31108": p31108.build,
    "p93791": p93791.build,
}


def benchmark_names() -> List[str]:
    """Names of all embedded benchmark SOCs."""
    return sorted(_REGISTRY)


def get_benchmark(name: str) -> Soc:
    """Build the named benchmark SOC.

    Raises ``KeyError`` with the list of valid names when unknown.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {benchmark_names()}"
        ) from None
    return factory()


__all__ = ["benchmark_names", "get_benchmark",
           "d695", "p21241", "p31108", "p93791"]
