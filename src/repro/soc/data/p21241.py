"""SOC p21241 — deterministic stand-in for the Philips SOC.

The paper (Table 4) publishes only ranges for p21241's 28 cores:

* 22 scan-testable logic cores — patterns 1..785, functional I/Os
  37..1197, scan chains 1..31, chain lengths 1..400;
* 6 memory cores — patterns 222..12324, functional I/Os 52..148,
  no scan.

We synthesize the SOC from exactly those ranges with a fixed seed and
calibrate the pattern counts so the test-complexity proxy lands near
21241 (the number in the SOC's name).  See DESIGN.md §4.1.
"""

from __future__ import annotations

from repro.soc.generator import CoreRanges, SocSpec, generate_soc
from repro.soc.soc import Soc

SPEC = SocSpec(
    name="p21241",
    num_logic_cores=22,
    num_memory_cores=6,
    logic=CoreRanges(
        patterns=(1, 785),
        functional_ios=(37, 1197),
        scan_chains=(1, 31),
        scan_lengths=(1, 400),
    ),
    memory=CoreRanges(
        patterns=(222, 12324),
        functional_ios=(52, 148),
    ),
    complexity_target=21241.0,
    seed=21241,
)


def build() -> Soc:
    """Build the p21241 stand-in (28 cores, deterministic)."""
    return generate_soc(SPEC)
