"""The :class:`Core` data type — one embedded core of an SOC.

A core is described by exactly the attributes the wrapper-design problem
:math:`P_W` needs (Section 2 of the paper):

* the number of test patterns to apply,
* the functional terminals (inputs, outputs, bidirectionals) that must
  receive wrapper cells, and
* the lengths of the core-internal scan chains.

Memory cores are modelled as cores with no internal scan chains; they
are tested by applying their patterns through the wrapper cells alone,
which is how the Philips SOCs in the paper treat them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class Core:
    """An embedded core, as seen by wrapper/TAM optimization.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"s38417"`` or ``"Module 12"``.
    num_patterns:
        Number of test patterns applied to the core.  Must be >= 1: a
        core with nothing to test should simply not participate in TAM
        optimization.
    num_inputs / num_outputs / num_bidirs:
        Functional terminal counts.  Each input (output) terminal gets a
        wrapper input (output) cell; each bidirectional terminal gets a
        cell that participates in both the scan-in and the scan-out
        path, following the convention of the ITC'02 benchmark suite.
    scan_chain_lengths:
        Lengths (in flip-flops) of the core-internal scan chains.  Empty
        for non-scan (e.g. memory or combinational) cores.
    """

    name: str
    num_patterns: int
    num_inputs: int
    num_outputs: int
    num_bidirs: int = 0
    scan_chain_lengths: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("core name must be non-empty")
        if self.num_patterns < 1:
            raise ValidationError(
                f"core {self.name!r}: num_patterns must be >= 1, "
                f"got {self.num_patterns}"
            )
        for label, value in (
            ("num_inputs", self.num_inputs),
            ("num_outputs", self.num_outputs),
            ("num_bidirs", self.num_bidirs),
        ):
            if value < 0:
                raise ValidationError(
                    f"core {self.name!r}: {label} must be >= 0, got {value}"
                )
        # Normalize any iterable of lengths to a tuple so the dataclass
        # stays hashable and order-stable.
        object.__setattr__(
            self, "scan_chain_lengths", tuple(self.scan_chain_lengths)
        )
        for length in self.scan_chain_lengths:
            if length < 1:
                raise ValidationError(
                    f"core {self.name!r}: scan chain lengths must be >= 1, "
                    f"got {length}"
                )
        if self.total_terminals == 0 and not self.scan_chain_lengths:
            raise ValidationError(
                f"core {self.name!r}: a testable core needs at least one "
                "terminal or one scan chain"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def num_scan_chains(self) -> int:
        """Number of core-internal scan chains."""
        return len(self.scan_chain_lengths)

    @property
    def is_scan_testable(self) -> bool:
        """True when the core has at least one internal scan chain."""
        return bool(self.scan_chain_lengths)

    @property
    def total_scan_cells(self) -> int:
        """Total flip-flops across all internal scan chains."""
        return sum(self.scan_chain_lengths)

    @property
    def longest_scan_chain(self) -> int:
        """Length of the longest internal scan chain (0 if none)."""
        return max(self.scan_chain_lengths, default=0)

    @property
    def total_terminals(self) -> int:
        """All functional terminals: inputs + outputs + bidirectionals."""
        return self.num_inputs + self.num_outputs + self.num_bidirs

    @property
    def num_input_cells(self) -> int:
        """Wrapper cells on the scan-in path: inputs + bidirectionals."""
        return self.num_inputs + self.num_bidirs

    @property
    def num_output_cells(self) -> int:
        """Wrapper cells on the scan-out path: outputs + bidirectionals."""
        return self.num_outputs + self.num_bidirs

    @property
    def test_data_bits(self) -> int:
        """Total test-data volume of the core, in bits.

        Defined as ``patterns * (scan cells + input cells + output
        cells)`` — every pattern shifts a full complement of stimulus
        and response bits.  Used by the SOC complexity proxy
        (:func:`repro.soc.complexity.test_complexity`).
        """
        payload = (
            self.total_scan_cells
            + self.num_input_cells
            + self.num_output_cells
        )
        return self.num_patterns * payload

    def describe(self) -> str:
        """One-line human-readable summary of the core."""
        scan = (
            f"{self.num_scan_chains} scan chains "
            f"(len {min(self.scan_chain_lengths)}-{self.longest_scan_chain})"
            if self.is_scan_testable
            else "no scan"
        )
        return (
            f"{self.name}: {self.num_patterns} patterns, "
            f"{self.num_inputs} in / {self.num_outputs} out / "
            f"{self.num_bidirs} bidir, {scan}"
        )
