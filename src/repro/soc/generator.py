"""Seeded synthetic SOC generation from published parameter ranges.

The DATE 2002 paper evaluates on three Philips SOCs whose full core
data was never published — only per-class min/max ranges (Tables 4, 8
and 14: pattern counts, functional I/O counts, scan-chain counts and
scan-chain length ranges, split into "logic" and "memory" cores).

This module generates a *deterministic stand-in* for such an SOC:

1. every published min/max is respected — and *attained*, so the
   regenerated range table matches the paper's exactly;
2. values between the extremes are drawn log-uniformly (test data in
   real SOCs spans orders of magnitude, so a linear draw would
   concentrate mass unrealistically near the maxima);
3. pattern counts are calibrated (by a clamped global multiplier,
   found by bisection) so the SOC's test-complexity proxy
   (:func:`repro.soc.complexity.test_complexity`) lands near the
   number encoded in the SOC's name.

The same machinery doubles as a general fuzz/scalability generator for
tests and benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from math import exp, log
from typing import Callable, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.soc.complexity import test_complexity
from repro.soc.core import Core
from repro.soc.soc import Soc


@dataclass(frozen=True)
class CoreRanges:
    """Min/max ranges for one class of cores (one row of Table 4/8/14).

    ``scan_chains == (0, 0)`` describes non-scan (memory) cores, in
    which case ``scan_lengths`` is ignored.
    """

    patterns: Tuple[int, int]
    functional_ios: Tuple[int, int]
    scan_chains: Tuple[int, int] = (0, 0)
    scan_lengths: Tuple[int, int] = (1, 1)

    def __post_init__(self) -> None:
        for label, (lo, hi) in (
            ("patterns", self.patterns),
            ("functional_ios", self.functional_ios),
            ("scan_chains", self.scan_chains),
            ("scan_lengths", self.scan_lengths),
        ):
            if lo > hi:
                raise ConfigurationError(
                    f"{label}: min {lo} exceeds max {hi}"
                )
            if lo < 0:
                raise ConfigurationError(f"{label}: min {lo} is negative")
        if self.patterns[0] < 1:
            raise ConfigurationError("patterns min must be >= 1")
        if self.functional_ios[0] < 1:
            raise ConfigurationError("functional_ios min must be >= 1")

    @property
    def has_scan(self) -> bool:
        return self.scan_chains[1] > 0


@dataclass(frozen=True)
class SocSpec:
    """Everything needed to synthesize one SOC deterministically.

    ``logic_floor_budget`` bounds any single logic core's testing-time
    floor: a core's time can never drop below
    ``patterns * (longest_chain + 1)`` no matter how wide its bus
    (scan chains are indivisible), so when the paper's results show
    the SOC testing time scaling down to some value T*, every core's
    floor must be below T*.  Setting the budget near T* makes the
    stand-in honor that published observable by capping chain lengths
    (within the published range) on high-pattern cores.
    """

    name: str
    num_logic_cores: int
    num_memory_cores: int
    logic: CoreRanges
    memory: Optional[CoreRanges] = None
    complexity_target: Optional[float] = None
    logic_floor_budget: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_logic_cores < 0 or self.num_memory_cores < 0:
            raise ConfigurationError("core counts must be >= 0")
        if self.num_logic_cores + self.num_memory_cores == 0:
            raise ConfigurationError("SOC spec declares zero cores")
        if self.num_memory_cores > 0 and self.memory is None:
            raise ConfigurationError(
                "memory core ranges required when num_memory_cores > 0"
            )
        if self.logic_floor_budget is not None:
            floor_of_min = self.logic.patterns[0] * (
                self.logic.scan_lengths[1] + 1
            )
            if floor_of_min > self.logic_floor_budget:
                raise ConfigurationError(
                    "logic_floor_budget is unreachable: even the "
                    f"minimum-pattern core needs {floor_of_min} cycles "
                    "to carry the published maximum chain length"
                )


class SocGenerator:
    """Deterministic SOC synthesis driven by a :class:`SocSpec`."""

    def __init__(self, spec: SocSpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    # Random draws
    # ------------------------------------------------------------------
    @staticmethod
    def _log_uniform(rng: random.Random, lo: int, hi: int) -> int:
        """Integer drawn log-uniformly from [lo, hi] (inclusive)."""
        if lo == hi:
            return lo
        # Guard against lo == 0 for scan-chain counts etc.
        lo_f = max(lo, 1)
        value = exp(rng.uniform(log(lo_f), log(hi)))
        return max(lo, min(hi, int(round(value))))

    def _draw_core(
        self,
        rng: random.Random,
        ranges: CoreRanges,
        name: str,
    ) -> Core:
        """Draw one core within ``ranges``."""
        patterns = self._log_uniform(rng, *ranges.patterns)
        total_ios = self._log_uniform(rng, *ranges.functional_ios)
        inputs, outputs = self._split_ios(rng, total_ios)
        chain_lengths: Tuple[int, ...] = ()
        if ranges.has_scan:
            num_chains = self._log_uniform(rng, *ranges.scan_chains)
            num_chains = max(num_chains, ranges.scan_chains[0], 1)
            chain_lengths = tuple(
                self._log_uniform(rng, *ranges.scan_lengths)
                for _ in range(num_chains)
            )
        return Core(
            name=name,
            num_patterns=patterns,
            num_inputs=inputs,
            num_outputs=outputs,
            num_bidirs=0,
            scan_chain_lengths=chain_lengths,
        )

    @staticmethod
    def _split_ios(rng: random.Random, total: int) -> Tuple[int, int]:
        """Split a functional-I/O total into (inputs, outputs).

        Real cores skew anywhere from input- to output-heavy; a 30..70%
        split keeps both sides non-empty whenever total >= 2.
        """
        if total == 1:
            return (1, 0)
        inputs = int(round(total * rng.uniform(0.3, 0.7)))
        inputs = max(1, min(total - 1, inputs))
        return inputs, total - inputs

    # ------------------------------------------------------------------
    # Range pinning
    # ------------------------------------------------------------------
    @staticmethod
    def _pin_extremes(
        cores: List[Core], ranges: CoreRanges
    ) -> List[Core]:
        """Force every published min/max to be attained by some core.

        Each extreme is written onto a different core (round-robin) so
        no single core becomes an implausible all-extremes outlier.
        The patched attribute never leaves the legal range, so the
        result still satisfies ``ranges``.
        """
        if not cores:
            return cores
        patched = list(cores)
        slot = 0

        def patch(index: int, **overrides: object) -> None:
            old = patched[index]
            patched[index] = Core(
                name=old.name,
                num_patterns=int(
                    overrides.get("num_patterns", old.num_patterns)  # type: ignore[arg-type]
                ),
                num_inputs=int(
                    overrides.get("num_inputs", old.num_inputs)  # type: ignore[arg-type]
                ),
                num_outputs=int(
                    overrides.get("num_outputs", old.num_outputs)  # type: ignore[arg-type]
                ),
                num_bidirs=old.num_bidirs,
                scan_chain_lengths=tuple(
                    overrides.get(
                        "scan_chain_lengths", old.scan_chain_lengths
                    )  # type: ignore[arg-type]
                ),
            )

        def next_slot() -> int:
            nonlocal slot
            index = slot % len(patched)
            slot += 1
            return index

        patch(next_slot(), num_patterns=ranges.patterns[0])
        patch(next_slot(), num_patterns=ranges.patterns[1])

        for target_total in ranges.functional_ios:
            index = next_slot()
            inputs = max(1, target_total // 2)
            outputs = target_total - inputs
            patch(index, num_inputs=inputs, num_outputs=outputs)

        if ranges.has_scan:
            # Pin chain-count extremes with mid-range lengths, and
            # length extremes inside whatever chain count the core has.
            mid_len = (ranges.scan_lengths[0] + ranges.scan_lengths[1]) // 2
            mid_len = max(ranges.scan_lengths[0], mid_len)
            for target_chains in ranges.scan_chains:
                index = next_slot()
                count = max(1, target_chains)
                patch(
                    index,
                    scan_chain_lengths=tuple([mid_len] * count),
                )
            # The MAXIMUM-length chain goes to the minimum-pattern
            # core so that core's testing-time floor
            # (patterns * (length + 1)) stays small — see
            # SocSpec.logic_floor_budget.  The minimum-length extreme
            # lives on any *other* core (or on a second chain of the
            # same core when the SOC has a single logic core).
            high_index = min(
                range(len(patched)),
                key=lambda i: patched[i].num_patterns,
            )
            existing = patched[high_index].scan_chain_lengths or (mid_len,)
            patch(
                high_index,
                scan_chain_lengths=(ranges.scan_lengths[1],) + existing[1:],
            )
            if len(patched) > 1:
                low_index = next_slot()
                while low_index == high_index:
                    low_index = next_slot()
                existing = patched[low_index].scan_chain_lengths or (mid_len,)
                patch(
                    low_index,
                    scan_chain_lengths=(
                        (ranges.scan_lengths[0],) + existing[1:]
                    ),
                )
            else:
                chains = patched[high_index].scan_chain_lengths
                if len(chains) > 1:
                    patch(
                        high_index,
                        scan_chain_lengths=(
                            chains[:-1] + (ranges.scan_lengths[0],)
                        ),
                    )
        return patched

    @staticmethod
    def _cap_logic_floors(
        cores: List[Core], ranges: CoreRanges, budget: int
    ) -> List[Core]:
        """Clamp chain lengths so no core's floor exceeds ``budget``.

        A core's floor is ``patterns * (longest_chain + 1)`` (chains
        are indivisible, so no TAM width beats its longest chain).
        Lengths are only ever reduced, and never below the published
        minimum, so the range contract is preserved as long as the
        maximum-length carrier is a low-pattern core (which
        ``_pin_extremes`` guarantees).
        """
        capped = []
        for core in cores:
            if not core.scan_chain_lengths:
                capped.append(core)
                continue
            max_length = max(
                ranges.scan_lengths[0],
                budget // core.num_patterns - 1,
            )
            if core.longest_scan_chain <= max_length:
                capped.append(core)
                continue
            capped.append(
                Core(
                    name=core.name,
                    num_patterns=core.num_patterns,
                    num_inputs=core.num_inputs,
                    num_outputs=core.num_outputs,
                    num_bidirs=core.num_bidirs,
                    scan_chain_lengths=tuple(
                        min(length, max_length)
                        for length in core.scan_chain_lengths
                    ),
                )
            )
        return capped

    # ------------------------------------------------------------------
    # Complexity calibration
    # ------------------------------------------------------------------
    @staticmethod
    def _scale_patterns(
        cores: List[Core],
        factor: float,
        ranges: CoreRanges,
        frozen: "frozenset[int]" = frozenset(),
    ) -> List[Core]:
        """Multiply pattern counts by ``factor``, clamped to the range.

        Cores whose index is in ``frozen`` (the carriers of the
        published pattern extremes) are left untouched so scaling can
        never move a published min/max.
        """
        lo, hi = ranges.patterns
        scaled = []
        for index, core in enumerate(cores):
            if index in frozen:
                scaled.append(core)
                continue
            patterns = max(lo, min(hi, int(round(core.num_patterns * factor))))
            scaled.append(
                Core(
                    name=core.name,
                    num_patterns=patterns,
                    num_inputs=core.num_inputs,
                    num_outputs=core.num_outputs,
                    num_bidirs=core.num_bidirs,
                    scan_chain_lengths=core.scan_chain_lengths,
                )
            )
        return scaled

    @staticmethod
    def _pattern_carriers(
        cores: List[Core], ranges: CoreRanges
    ) -> "frozenset[int]":
        """Indices of one core at each published pattern extreme."""
        carriers = set()
        for target in ranges.patterns:
            for index, core in enumerate(cores):
                if core.num_patterns == target and index not in carriers:
                    carriers.add(index)
                    break
        return frozenset(carriers)

    @staticmethod
    def _scale_scan_lengths(
        cores: List[Core], factor: float, ranges: CoreRanges
    ) -> List[Core]:
        """Multiply scan-chain lengths by ``factor``, clamped to range."""
        if not ranges.has_scan:
            return list(cores)
        lo, hi = ranges.scan_lengths
        scaled = []
        for core in cores:
            lengths = tuple(
                max(lo, min(hi, int(round(length * factor))))
                for length in core.scan_chain_lengths
            )
            scaled.append(
                Core(
                    name=core.name,
                    num_patterns=core.num_patterns,
                    num_inputs=core.num_inputs,
                    num_outputs=core.num_outputs,
                    num_bidirs=core.num_bidirs,
                    scan_chain_lengths=lengths,
                )
            )
        return scaled

    def _bisect_factor(
        self,
        complexity_for: Callable[[float], float],
        target: float,
    ) -> float:
        """Find the multiplier whose complexity is closest to target."""
        lo_factor, hi_factor = 1e-3, 1e3
        if complexity_for(hi_factor) < target:
            return hi_factor
        if complexity_for(lo_factor) > target:
            return lo_factor
        for _ in range(60):
            mid = (lo_factor * hi_factor) ** 0.5
            if complexity_for(mid) < target:
                lo_factor = mid
            else:
                hi_factor = mid
        return (lo_factor * hi_factor) ** 0.5

    def _calibrate(
        self,
        logic: List[Core],
        memory: List[Core],
        target: float,
    ) -> Tuple[List[Core], List[Core]]:
        """Steer the complexity proxy toward the target, within ranges.

        Two stages, each a bisection over a global multiplier clamped
        to the published ranges: first pattern counts, then (only when
        pattern scaling saturates more than 5% away from the target)
        scan-chain lengths.  Both stages preserve every published
        min/max via re-pinning.  If the target still cannot be reached
        inside the ranges, the closest attainable SOC is returned; the
        residual is visible through
        :func:`repro.soc.complexity.test_complexity`.
        """
        spec = self.spec
        logic_frozen = self._pattern_carriers(logic, spec.logic)
        memory_frozen = (
            self._pattern_carriers(memory, spec.memory)
            if memory and spec.memory else frozenset()
        )

        def soc_complexity(
            logic_cores: List[Core], memory_cores: List[Core]
        ) -> float:
            soc = Soc(
                name=spec.name, cores=tuple(logic_cores + memory_cores)
            )
            return test_complexity(soc)

        def pattern_complexity(factor: float) -> float:
            return soc_complexity(
                self._scale_patterns(logic, factor, spec.logic,
                                     logic_frozen),
                self._scale_patterns(memory, factor, spec.memory,
                                     memory_frozen)
                if memory and spec.memory else [],
            )

        def apply_pattern_factor(factor: float) -> None:
            nonlocal logic, memory
            logic = self._scale_patterns(logic, factor, spec.logic,
                                         logic_frozen)
            if memory and spec.memory:
                memory = self._scale_patterns(memory, factor, spec.memory,
                                              memory_frozen)

        def recap() -> None:
            nonlocal logic
            if spec.logic_floor_budget is not None:
                logic = self._cap_logic_floors(
                    logic, spec.logic, spec.logic_floor_budget
                )

        apply_pattern_factor(self._bisect_factor(pattern_complexity, target))
        recap()

        achieved = soc_complexity(logic, memory)
        if abs(achieved - target) / target > 0.05:
            def scan_complexity(factor: float) -> float:
                return soc_complexity(
                    self._scale_scan_lengths(logic, factor, spec.logic),
                    memory,
                )

            factor = self._bisect_factor(scan_complexity, target)
            logic = self._scale_scan_lengths(logic, factor, spec.logic)
            logic = self._repin_scan_lengths(logic, spec.logic)
            recap()
            # Absorb the re-pinning residue with one more pattern pass.
            apply_pattern_factor(
                self._bisect_factor(pattern_complexity, target)
            )
            recap()
        return logic, memory

    @staticmethod
    def _repin_scan_lengths(
        cores: List[Core], ranges: CoreRanges
    ) -> List[Core]:
        """Restore the scan-length extremes after global scaling."""
        if not ranges.has_scan or not cores:
            return cores
        patched = list(cores)

        def with_first_chain(core: Core, length: int) -> Core:
            lengths = (length,) + core.scan_chain_lengths[1:]
            return Core(
                name=core.name,
                num_patterns=core.num_patterns,
                num_inputs=core.num_inputs,
                num_outputs=core.num_outputs,
                num_bidirs=core.num_bidirs,
                scan_chain_lengths=lengths,
            )

        scan_indices = [
            index for index, core in enumerate(patched)
            if core.scan_chain_lengths
        ]
        if not scan_indices:
            return patched
        # Max length on the minimum-pattern scan core (the floor-budget
        # rule, as in _pin_extremes); min length on any other core.
        high_index = min(
            scan_indices, key=lambda i: patched[i].num_patterns
        )
        low_candidates = [i for i in scan_indices if i != high_index]
        low_index = low_candidates[0] if low_candidates else high_index
        patched[low_index] = with_first_chain(
            patched[low_index], ranges.scan_lengths[0]
        )
        if high_index == low_index:
            # Single scan core: put the max on its last chain instead.
            core = patched[low_index]
            if core.num_scan_chains > 1:
                lengths = (
                    core.scan_chain_lengths[:-1]
                    + (ranges.scan_lengths[1],)
                )
                patched[low_index] = Core(
                    name=core.name,
                    num_patterns=core.num_patterns,
                    num_inputs=core.num_inputs,
                    num_outputs=core.num_outputs,
                    num_bidirs=core.num_bidirs,
                    scan_chain_lengths=lengths,
                )
        else:
            patched[high_index] = with_first_chain(
                patched[high_index], ranges.scan_lengths[1]
            )
        return patched

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def build(self) -> Soc:
        """Generate the SOC described by the spec (fully deterministic)."""
        spec = self.spec
        rng = random.Random(spec.seed)

        logic = [
            self._draw_core(rng, spec.logic, f"logic{index + 1}")
            for index in range(spec.num_logic_cores)
        ]
        logic = self._pin_extremes(logic, spec.logic)
        if spec.logic_floor_budget is not None:
            logic = self._cap_logic_floors(
                logic, spec.logic, spec.logic_floor_budget
            )

        memory: List[Core] = []
        if spec.num_memory_cores > 0 and spec.memory is not None:
            memory = [
                self._draw_core(rng, spec.memory, f"mem{index + 1}")
                for index in range(spec.num_memory_cores)
            ]
            memory = self._pin_extremes(memory, spec.memory)

        if spec.complexity_target is not None:
            logic, memory = self._calibrate(
                logic, memory, spec.complexity_target
            )

        return Soc(name=spec.name, cores=tuple(logic + memory))


def generate_soc(spec: SocSpec) -> Soc:
    """Convenience wrapper: ``SocGenerator(spec).build()``."""
    return SocGenerator(spec).build()


def random_soc(
    name: str,
    num_cores: int,
    seed: int,
    max_patterns: int = 500,
    max_ios: int = 200,
    max_chains: int = 16,
    max_chain_length: int = 128,
    memory_fraction: float = 0.3,
) -> Soc:
    """Quick random SOC for tests and fuzzing (deterministic per seed)."""
    if num_cores < 1:
        raise ConfigurationError("num_cores must be >= 1")
    num_memory = int(round(num_cores * memory_fraction))
    num_memory = min(num_memory, num_cores - 1) if num_cores > 1 else 0
    spec = SocSpec(
        name=name,
        num_logic_cores=num_cores - num_memory,
        num_memory_cores=num_memory,
        logic=CoreRanges(
            patterns=(1, max_patterns),
            functional_ios=(2, max_ios),
            scan_chains=(1, max_chains),
            scan_lengths=(1, max_chain_length),
        ),
        memory=CoreRanges(
            patterns=(1, max_patterns * 4),
            functional_ios=(2, max_ios),
        ),
        seed=seed,
    )
    return generate_soc(spec)
