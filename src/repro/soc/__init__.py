"""SOC data model: cores, systems-on-chip, benchmark data and generators.

This subpackage provides everything needed to describe a core-based SOC
for test-architecture optimization:

* :class:`~repro.soc.core.Core` — one embedded core (test patterns,
  functional terminals, internal scan chains);
* :class:`~repro.soc.soc.Soc` — a named collection of cores;
* :mod:`~repro.soc.itc02` — reader/writer for an ITC'02-style ``.soc``
  text format;
* :mod:`~repro.soc.generator` — seeded synthetic SOC generation from
  published parameter ranges;
* :mod:`~repro.soc.complexity` — the test-data-volume complexity proxy;
* :mod:`~repro.soc.data` — the four benchmark SOCs used in the paper
  (d695 and deterministic stand-ins for the Philips SOCs p21241,
  p31108 and p93791).
"""

from repro.soc.core import Core
from repro.soc.soc import Soc
from repro.soc.complexity import test_complexity
from repro.soc.generator import SocGenerator, CoreRanges, SocSpec

__all__ = [
    "Core",
    "Soc",
    "test_complexity",
    "SocGenerator",
    "CoreRanges",
    "SocSpec",
]
