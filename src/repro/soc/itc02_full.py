"""Reader/writer for the original ITC'02 SOC Test Benchmarks format.

The ITC'02 benchmark suite (Marinissen, Iyengar & Chakrabarty, ITC
2002) distributes each SOC as a ``.soc`` file in a keyword style:

.. code-block:: text

    SocName d695
    TotalModules 11

    Module 0
        Level 0
        Inputs 32
        Outputs 32
        Bidirs 0
        TotalTests 0

    Module 4
        Level 1
        Inputs 36
        Outputs 39
        Bidirs 0
        ScanChains 4 : 54 53 52 52
        TotalTests 1
        Test 1
            TotalPatterns 105
            ScanUse 1
            TamUse 1

Grammar accepted here (tolerant superset of what the suite uses):

* ``SocName <name>`` — required, once;
* ``TotalModules <n>`` — optional; checked against the module count
  when present;
* ``Module <k>`` opens module ``k``; module 0 (or any module whose
  ``Level`` is 0) is the SOC itself and does not become a core;
* per-module: ``Level``, ``Inputs``, ``Outputs``, ``Bidirs``,
  ``ScanChains N [: l1 ... lN]``, ``TotalTests``;
* per-test (``Test <k>``): ``TotalPatterns``, ``ScanUse``, ``TamUse``;
  a module's pattern count is the sum over its TAM-using tests
  (``TamUse 0`` tests ride functional access and are skipped);
* unknown keywords are ignored (the suite has power/hierarchy
  extensions this model does not use);
* ``#`` and ``//`` start comments; indentation is free-form.

Modules with no TAM-tested patterns (e.g. the top module) are
dropped.  :func:`format_itc02_soc` writes the same style and
round-trips through :func:`parse_itc02_soc`.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.exceptions import ParseError
from repro.soc.core import Core
from repro.soc.soc import Soc

_INT_FIELDS = {
    "level", "inputs", "outputs", "bidirs", "totaltests",
    "totalpatterns", "scanuse", "tamuse",
}


class _Module:
    """Mutable per-module state while parsing."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.level: Optional[int] = None
        self.inputs = 0
        self.outputs = 0
        self.bidirs = 0
        self.scan_chains: List[int] = []
        self.declared_tests: Optional[int] = None
        self.patterns = 0          # committed TAM-using patterns
        self.in_test = False
        # Open-test state; committed when the test block closes so
        # that TamUse may appear before or after TotalPatterns.
        self.pending_patterns = 0
        self.pending_tam_use = True

    def commit_test(self) -> None:
        """Fold the open test (if any) into the module totals."""
        if self.in_test and self.pending_tam_use:
            self.patterns += self.pending_patterns
        self.in_test = False
        self.pending_patterns = 0
        self.pending_tam_use = True

    def core_name(self) -> str:
        return f"Module{self.index}"

    def is_top(self) -> bool:
        return self.index == 0 or self.level == 0

    def to_core(self) -> Optional[Core]:
        if self.is_top() or self.patterns == 0:
            return None
        return Core(
            name=self.core_name(),
            num_patterns=self.patterns,
            num_inputs=self.inputs,
            num_outputs=self.outputs,
            num_bidirs=self.bidirs,
            scan_chain_lengths=tuple(self.scan_chains),
        )


def _strip_comment(line: str) -> str:
    for marker in ("#", "//"):
        position = line.find(marker)
        if position >= 0:
            line = line[:position]
    return line.strip()


def _int(token: str, line_number: int, what: str) -> int:
    try:
        return int(token)
    except ValueError:
        raise ParseError(
            f"expected integer for {what}, got {token!r}", line_number
        ) from None


def parse_itc02_soc(text: str) -> Soc:
    """Parse an ITC'02-format SOC description."""
    soc_name: Optional[str] = None
    declared_modules: Optional[int] = None
    modules: List[_Module] = []
    current: Optional[_Module] = None

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0].lower()

        if keyword == "socname":
            if soc_name is not None:
                raise ParseError("duplicate SocName", line_number)
            if len(tokens) != 2:
                raise ParseError("SocName takes one value", line_number)
            soc_name = tokens[1]
        elif keyword == "totalmodules":
            declared_modules = _int(tokens[1], line_number, "TotalModules")
        elif keyword == "module":
            if current is not None:
                current.commit_test()
            index = _int(tokens[1], line_number, "Module index")
            current = _Module(index)
            modules.append(current)
        elif keyword == "test":
            if current is None:
                raise ParseError("Test outside a Module", line_number)
            current.commit_test()
            current.in_test = True
        elif keyword == "scanchains":
            if current is None:
                raise ParseError("ScanChains outside a Module",
                                 line_number)
            count = _int(tokens[1], line_number, "scan chain count")
            if count == 0:
                current.scan_chains = []
                continue
            if len(tokens) < 3 or tokens[2] != ":":
                raise ParseError(
                    "ScanChains N must be followed by ': lengths'",
                    line_number,
                )
            lengths = [
                _int(token, line_number, "scan chain length")
                for token in tokens[3:]
            ]
            if len(lengths) != count:
                raise ParseError(
                    f"ScanChains declares {count} chains but lists "
                    f"{len(lengths)} lengths",
                    line_number,
                )
            current.scan_chains = lengths
        elif keyword in _INT_FIELDS:
            if current is None:
                raise ParseError(
                    f"{tokens[0]} outside a Module", line_number
                )
            value = _int(tokens[1], line_number, tokens[0])
            if keyword == "level":
                current.level = value
            elif keyword == "inputs":
                current.inputs = value
            elif keyword == "outputs":
                current.outputs = value
            elif keyword == "bidirs":
                current.bidirs = value
            elif keyword == "totaltests":
                current.declared_tests = value
            elif keyword == "tamuse":
                if current.in_test:
                    current.pending_tam_use = value != 0
            elif keyword == "totalpatterns":
                if not current.in_test:
                    raise ParseError(
                        "TotalPatterns outside a Test", line_number
                    )
                current.pending_patterns += value
            # ScanUse is accepted and ignored: the scan configuration
            # is already captured by ScanChains.
        else:
            # Tolerate suite extensions (power, hierarchy, ...).
            continue

    if current is not None:
        current.commit_test()
    if soc_name is None:
        raise ParseError("no SocName declaration found")
    if declared_modules is not None and declared_modules != len(modules):
        raise ParseError(
            f"TotalModules says {declared_modules}, file defines "
            f"{len(modules)}"
        )

    cores = [
        core
        for module in modules
        if (core := module.to_core()) is not None
    ]
    if not cores:
        raise ParseError(
            f"SOC {soc_name!r} has no TAM-testable modules"
        )
    return Soc(name=soc_name, cores=tuple(cores))


def load_itc02_soc(path: Union[str, Path]) -> Soc:
    """Load an ITC'02-format file from disk."""
    return parse_itc02_soc(Path(path).read_text())


def format_itc02_soc(soc: Soc) -> str:
    """Serialize ``soc`` in the ITC'02 style (module 0 = the SOC)."""
    lines = [
        f"SocName {soc.name}",
        f"TotalModules {len(soc.cores) + 1}",
        "",
        "Module 0",
        "    Level 0",
        "    Inputs 0",
        "    Outputs 0",
        "    Bidirs 0",
        "    TotalTests 0",
        "",
    ]
    for index, core in enumerate(soc.cores, start=1):
        lines.append(f"Module {index}")
        lines.append("    Level 1")
        lines.append(f"    Inputs {core.num_inputs}")
        lines.append(f"    Outputs {core.num_outputs}")
        lines.append(f"    Bidirs {core.num_bidirs}")
        if core.is_scan_testable:
            lengths = " ".join(str(n) for n in core.scan_chain_lengths)
            lines.append(
                f"    ScanChains {core.num_scan_chains} : {lengths}"
            )
        else:
            lines.append("    ScanChains 0")
        lines.append("    TotalTests 1")
        lines.append("    Test 1")
        lines.append(f"        TotalPatterns {core.num_patterns}")
        scan_use = 1 if core.is_scan_testable else 0
        lines.append(f"        ScanUse {scan_use}")
        lines.append("        TamUse 1")
        lines.append("")
    return "\n".join(lines)


def write_itc02_soc(soc: Soc, path: Union[str, Path]) -> None:
    """Write ``soc`` to ``path`` in the ITC'02 style."""
    Path(path).write_text(format_itc02_soc(soc))
