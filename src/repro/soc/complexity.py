"""SOC test-complexity proxy.

The Philips SOC names in the paper (p21241, p31108, p93791) encode a
"test complexity number" computed "using the formula presented in [8]"
(Iyengar et al., JETTA 2002).  The DATE text does not restate that
formula, so this module implements a documented proxy:

    complexity(SOC) = total test-data volume in kilobits
                    = sum over cores of
                        patterns * (scan cells + input cells
                                    + output cells)  / 1000

With the embedded d695 data this proxy evaluates to roughly 695 — i.e.
it is consistent with the academic benchmark's name — which is why we
adopted it.  The proxy is used only to *calibrate* the synthetic
Philips stand-ins (see :mod:`repro.soc.generator`); none of the
optimization algorithms depend on it.
"""

from __future__ import annotations

from repro.soc.soc import Soc

#: Divisor converting total test-data bits into the complexity number.
BITS_PER_COMPLEXITY_UNIT = 1000


def test_complexity(soc: Soc) -> float:
    """Test-complexity proxy of ``soc`` (kilobits of test data).

    >>> from repro.soc.data import d695
    >>> 600 < test_complexity(d695.build()) < 800
    True
    """
    return soc.total_test_data_bits / BITS_PER_COMPLEXITY_UNIT
