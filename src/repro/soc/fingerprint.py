"""Content hashing of cores and SOCs.

The persistent table store (:mod:`repro.service.store`) memoizes each
core's wrapper time table on disk.  Its cache key must change exactly
when the table's *inputs* change — the attributes ``Design_wrapper``
reads — and must not depend on anything else, so that renaming a core
or re-ordering a SOC keeps its entries warm while editing a scan
chain invalidates them automatically.

:func:`core_fingerprint` therefore hashes the scan/IO structure of a
core (pattern count, terminal counts, scan-chain lengths) and nothing
else — deliberately *not* the core's name.  Two cores with identical
structure share one table entry.  ``ALGORITHM_VERSION`` is folded
into the hash so a future change to the wrapper-design algorithm
invalidates every stored table at once.
"""

from __future__ import annotations

import hashlib
import json

from repro.soc.core import Core
from repro.soc.soc import Soc

#: Version of the wrapper-design algorithm whose outputs the stored
#: tables encode.  Bump when ``design_wrapper`` changes behaviour so
#: stale staircases can never be served.
ALGORITHM_VERSION = 1


def core_fingerprint(core: Core) -> str:
    """Hex digest of the core attributes wrapper design depends on.

    Stable across processes and Python versions (the payload is
    canonical JSON, not ``hash()``), independent of the core's name,
    and sensitive to every field ``Design_wrapper`` reads.
    """
    payload = json.dumps(
        {
            "algo": ALGORITHM_VERSION,
            "patterns": core.num_patterns,
            "inputs": core.num_inputs,
            "outputs": core.num_outputs,
            "bidirs": core.num_bidirs,
            "scan": list(core.scan_chain_lengths),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("ascii")).hexdigest()[:24]


def soc_fingerprint(soc: Soc) -> str:
    """Hex digest of a SOC's full core structure, order-sensitive.

    Used by the exploration service to key whole-SOC artifacts (job
    memoization); core order matters there because assignment vectors
    are positional.
    """
    payload = ",".join(core_fingerprint(core) for core in soc.cores)
    return hashlib.sha256(payload.encode("ascii")).hexdigest()[:24]
