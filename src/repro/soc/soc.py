"""The :class:`Soc` container — a named collection of cores.

The SOC is the unit over which the four co-optimization problems
(P_W, P_AW, P_PAW, P_NPAW) are posed.  Beyond holding its cores, the
class offers convenience selectors (logic vs. memory cores) and summary
statistics used by the data-range tables in the paper (Tables 4, 8, 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import ValidationError
from repro.soc.core import Core


@dataclass(frozen=True)
class RangeSummary:
    """Min/max ranges over a set of cores, one row of Table 4/8/14."""

    num_cores: int
    patterns: Tuple[int, int]
    functional_ios: Tuple[int, int]
    scan_chains: Tuple[int, int]
    scan_lengths: Optional[Tuple[int, int]]

    def as_row(self) -> Dict[str, str]:
        """Render as strings in the paper's table layout."""
        fmt = lambda lo_hi: f"{lo_hi[0]}-{lo_hi[1]}"  # noqa: E731
        return {
            "cores": str(self.num_cores),
            "patterns": fmt(self.patterns),
            "ios": fmt(self.functional_ios),
            "chains": fmt(self.scan_chains),
            "lengths": fmt(self.scan_lengths) if self.scan_lengths else "-",
        }


@dataclass(frozen=True)
class Soc:
    """A system-on-chip: a named, ordered collection of cores.

    Core order is significant: assignment vectors in results follow the
    paper's notation, where position ``i`` of the vector is core ``i+1``
    (cores are numbered from 1 in all reports).
    """

    name: str
    cores: Tuple[Core, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("SOC name must be non-empty")
        object.__setattr__(self, "cores", tuple(self.cores))
        if not self.cores:
            raise ValidationError(f"SOC {self.name!r} has no cores")
        seen = set()
        for core in self.cores:
            if core.name in seen:
                raise ValidationError(
                    f"SOC {self.name!r}: duplicate core name {core.name!r}"
                )
            seen.add(core.name)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cores)

    def __iter__(self) -> Iterator[Core]:
        return iter(self.cores)

    def __getitem__(self, index: int) -> Core:
        return self.cores[index]

    def core_by_name(self, name: str) -> Core:
        """Look up a core by name; raises ``KeyError`` when absent."""
        for core in self.cores:
            if core.name == name:
                return core
        raise KeyError(f"SOC {self.name!r} has no core named {name!r}")

    def index_of(self, name: str) -> int:
        """0-based index of the named core."""
        for index, core in enumerate(self.cores):
            if core.name == name:
                return index
        raise KeyError(f"SOC {self.name!r} has no core named {name!r}")

    # ------------------------------------------------------------------
    # Selectors and statistics
    # ------------------------------------------------------------------
    @property
    def logic_cores(self) -> List[Core]:
        """Cores with internal scan (the paper's 'scan-testable logic')."""
        return [core for core in self.cores if core.is_scan_testable]

    @property
    def memory_cores(self) -> List[Core]:
        """Cores without internal scan (memories / hard macros)."""
        return [core for core in self.cores if not core.is_scan_testable]

    @property
    def total_test_data_bits(self) -> int:
        """Sum of per-core test-data volumes, in bits."""
        return sum(core.test_data_bits for core in self.cores)

    def range_summary(self, cores: Sequence[Core]) -> Optional[RangeSummary]:
        """Build one row of a Table 4/8/14-style data summary.

        Returns ``None`` when ``cores`` is empty (e.g. a SOC without
        memory cores).
        """
        if not cores:
            return None
        patterns = [core.num_patterns for core in cores]
        ios = [core.total_terminals for core in cores]
        chains = [core.num_scan_chains for core in cores]
        lengths = [
            length
            for core in cores
            for length in core.scan_chain_lengths
        ]
        return RangeSummary(
            num_cores=len(cores),
            patterns=(min(patterns), max(patterns)),
            functional_ios=(min(ios), max(ios)),
            scan_chains=(min(chains), max(chains)),
            scan_lengths=(min(lengths), max(lengths)) if lengths else None,
        )

    def logic_range_summary(self) -> Optional[RangeSummary]:
        """Range summary over the scan-testable logic cores."""
        return self.range_summary(self.logic_cores)

    def memory_range_summary(self) -> Optional[RangeSummary]:
        """Range summary over the memory (non-scan) cores."""
        return self.range_summary(self.memory_cores)

    def describe(self) -> str:
        """Multi-line human-readable summary of the SOC."""
        lines = [
            f"SOC {self.name}: {len(self.cores)} cores "
            f"({len(self.logic_cores)} logic, "
            f"{len(self.memory_cores)} memory)",
        ]
        lines.extend(f"  {core.describe()}" for core in self.cores)
        return "\n".join(lines)
