"""Resolve SOC *sources* — benchmark names or ``.soc`` file paths.

The CLI and the exploration service both accept SOCs by a single
string: either the name of an embedded benchmark (``d695``,
``p21241``, ``p31108``, ``p93791``) or a path to an ITC'02-dialect
``.soc`` file.  :func:`load_source` is that shared resolution rule,
so the two front-ends cannot drift apart.
"""

from __future__ import annotations

from pathlib import Path

from repro.exceptions import ReproError
from repro.soc.data import benchmark_names, get_benchmark
from repro.soc.itc02 import load_soc
from repro.soc.soc import Soc


def load_source(source: str) -> Soc:
    """Load a SOC from a benchmark name or a ``.soc`` file path.

    Benchmark names win over paths (none of the embedded names is a
    plausible filename).  A source that is neither raises
    :class:`~repro.exceptions.ReproError` listing the valid names.
    """
    if source in benchmark_names():
        return get_benchmark(source)
    path = Path(source)
    if not path.exists():
        raise ReproError(
            f"{source!r} is neither an embedded benchmark "
            f"({', '.join(benchmark_names())}) nor an existing file"
        )
    return load_soc(path)
