"""The canonical, typed description of an optimization job.

Until this module existed the same exploration job was described four
different ways — ``co_optimize``'s keyword list, the engine's
:class:`~repro.engine.batch.BatchJob`, the service's ad-hoc submit
dicts, and each CLI subcommand's argparse namespace — and every new
option had to be threaded through all four by hand.  ``repro.api``
collapses them onto two frozen dataclasses:

* :class:`OptimizeSpec` — everything one ``co_optimize`` call takes
  beyond the SOC itself: the TAM budget, the TAM count(s), and the
  enumerator/polish/prune/engine knobs;
* :class:`GridSpec` — a whole submission: SOC *sources* (benchmark
  names or ``.soc`` paths, resolved by :func:`repro.soc.loader.
  load_source`) crossed with per-point :class:`OptimizeSpec` s, plus
  execution hints that do not affect results.

Both serialize through schema-versioned ``to_dict``/``from_dict``
(loaders reject unknown schema versions and unknown fields instead of
guessing), validate on construction with
:class:`~repro.exceptions.ConfigurationError`, and reduce to a
:meth:`~GridSpec.canonical_key` — a content hash over the resolved
SOC fingerprints and the *normalized* option set.  The key is what
the exploration server memoizes on, in memory and on disk, so
identical grids submitted through any surface (Python API, CLI
``batch``, IPC v1 or v2) collapse onto one cache entry that survives
server restarts.

Validation here is *structural* (types, ranges, unknown fields).
String-valued knobs such as ``enumerator`` are deliberately checked
by the execution layer instead, so a bad value fails per grid point
(a structured :class:`~repro.engine.batch.FailedPoint`) rather than
rejecting a whole submission.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.exceptions import ConfigurationError
from repro.soc.fingerprint import soc_fingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.batch import BatchJob
    from repro.soc.soc import Soc

#: Schema version of the spec dictionaries.  Bump on any change to
#: the field set or its canonicalization; loaders refuse versions
#: they do not know, and the canonical key folds the version in so a
#: schema change can never alias an old memo entry.
#:
#: Version history: 1 — the original exact-only option set;
#: 2 — the ``mode={"exact","search"}`` axis plus the search-tier
#: options (``search_strategy``/``seed``/``time_budget``/
#: ``eval_budget``/``target_gap``).
SPEC_SCHEMA_VERSION = 2

#: Valid ``mode`` values: the paper's exact sweep+polish pipeline,
#: and the anytime metaheuristic tier of :mod:`repro.search`.
MODES: Tuple[str, ...] = ("exact", "search")

#: The paper found architectures beyond ten TAMs "less useful for
#: testing time minimization"; its P_NPAW experiments use this cap.
#: (Re-exported by :mod:`repro.optimize.co_optimize` for backward
#: compatibility.)
DEFAULT_MAX_TAMS = 10

#: Option fields of :class:`OptimizeSpec` (everything except the TAM
#: budget and counts) with their defaults — the single source of
#: truth the canonicalization fills absent options from.
OPTION_DEFAULTS: Dict[str, Any] = {
    "enumerator": "unique",
    "polish": True,
    "polish_top_k": 1,
    "polish_per_tam_count": False,
    "exact_node_limit": 2_000_000,
    "exact_time_limit": 30.0,
    # None = "the consuming surface's default": the paper's abort in
    # a direct co_optimize call, the outcome-identical "lb" in the
    # engine/service paths.  An explicit True/False/"lb" is always
    # honored verbatim, on every surface.
    "prune": None,
    "sweep_engine": "kernel",
    # -- the heuristic search tier (mode="search") ------------------
    # The seed is a *result-defining* input (a search outcome is a
    # pure function of spec + seed), so it lives in the canonical key
    # like every other option; runs with different seeds are
    # different grid points, never memo aliases.
    "mode": "exact",
    "search_strategy": "sa",
    "seed": 0,
    "time_budget": 5.0,
    "eval_budget": 20000,
    "target_gap": 0.0,
}

#: The option fields only meaningful under ``mode="search"``; a spec
#: that sets any of them away from its default while ``mode`` stays
#: ``"exact"`` is rejected at construction (the knob would silently
#: do nothing).
SEARCH_ONLY_OPTIONS: Tuple[str, ...] = (
    "search_strategy", "seed", "time_budget", "eval_budget",
    "target_gap",
)


def _frozen_counts(
    num_tams: Union[int, Iterable[int], None]
) -> Union[int, Tuple[int, ...], None]:
    """Freeze a counts iterable to a tuple; ints and None pass through."""
    if num_tams is None or isinstance(num_tams, int):
        return num_tams
    return tuple(num_tams)


def resolved_tam_counts(
    total_width: int,
    num_tams: Union[int, Iterable[int], None],
) -> Tuple[int, ...]:
    """The TAM counts a job actually sweeps, defaults applied.

    ``None`` means the paper's per-width P_NPAW default
    ``1..min(10, W)``; a single count and explicit iterables pass
    through.  This is the one resolution rule shared by
    :func:`~repro.optimize.co_optimize.co_optimize` and the batch
    engine's intra-job shard planner, so both enumerate the identical
    partition space.
    """
    if num_tams is None:
        return tuple(
            range(1, min(DEFAULT_MAX_TAMS, total_width) + 1)
        )
    if isinstance(num_tams, int):
        return (num_tams,)
    return tuple(num_tams)


def _canonical_counts(
    num_tams: Union[int, Tuple[int, ...], None]
) -> Optional[List[int]]:
    """Normalize TAM counts for hashing: ``B`` and ``(B,)`` coincide."""
    if num_tams is None:
        return None
    if isinstance(num_tams, int):
        return [num_tams]
    return [int(count) for count in num_tams]


def _normalized_option(key: str, value: Any) -> Any:
    """Coerce ``value`` to the numeric type of ``key``'s default.

    Makes ``{"exact_time_limit": 30}`` and ``30.0`` hash identically
    without touching bools, strings, or unknown keys.
    """
    default = OPTION_DEFAULTS.get(key)
    if isinstance(default, bool) or isinstance(value, bool):
        return value
    if isinstance(default, int) and isinstance(value, (int, float)):
        return int(value)
    if isinstance(default, float) and isinstance(value, (int, float)):
        return float(value)
    return value


def _job_payload(
    fingerprint: str,
    total_width: int,
    num_tams: Union[int, Tuple[int, ...], None],
    options: Mapping[str, Any],
) -> Dict[str, Any]:
    """One grid point's canonical content, defaults filled in.

    Shared by :func:`jobs_canonical_key` and
    :meth:`GridSpec.canonical_key` so a grid hashes identically
    whether it arrived as typed specs, raw :class:`~repro.engine.
    batch.BatchJob` s, or a v1 IPC dict.
    """
    merged: Dict[str, Any] = dict(OPTION_DEFAULTS)
    for key, value in options.items():
        merged[key] = _normalized_option(key, value)
    return {
        "soc": fingerprint,
        "total_width": int(total_width),
        "num_tams": _canonical_counts(num_tams),
        "options": merged,
    }


def _digest(payload: Any) -> str:
    """Stable hex digest of a canonical-JSON payload."""
    text = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=repr
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:24]


def jobs_canonical_key(jobs: Sequence["BatchJob"]) -> str:
    """Content hash of a grid given as engine jobs, order-sensitive.

    Equals :meth:`GridSpec.canonical_key` for the grid the spec
    resolves to.  Option values must be immutable (the jobs are
    hashed first); a mutable value raises ``TypeError``, which the
    IPC layer reports as a malformed request.
    """
    job_tuple = tuple(jobs)
    hash(job_tuple)  # reject mutable option values up front
    return _digest({
        "spec": SPEC_SCHEMA_VERSION,
        "jobs": [
            _job_payload(
                soc_fingerprint(job.soc),
                job.total_width,
                job.num_tams,
                job.options_dict(),
            )
            for job in job_tuple
        ],
    })


@dataclass(frozen=True)
class OptimizeSpec:
    """Everything one ``co_optimize`` call takes beyond the SOC.

    Immutable, hashable, and picklable.  ``num_tams`` follows
    :func:`~repro.optimize.co_optimize.co_optimize`: a single count
    (P_PAW), a tuple of counts, or ``None`` for the paper's per-width
    P_NPAW default ``range(1, min(10, W) + 1)``.  See the module
    docstring for what is (and is not) validated here.
    """

    total_width: int
    num_tams: Union[int, Tuple[int, ...], None] = None
    enumerator: str = "unique"
    polish: bool = True
    polish_top_k: int = 1
    polish_per_tam_count: bool = False
    exact_node_limit: int = 2_000_000
    exact_time_limit: float = 30.0
    prune: Union[None, bool, str] = None
    sweep_engine: str = "kernel"
    mode: str = "exact"
    search_strategy: str = "sa"
    seed: int = 0
    time_budget: float = 5.0
    eval_budget: int = 20000
    target_gap: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.total_width, int) or isinstance(
            self.total_width, bool
        ):
            raise ConfigurationError(
                f"total_width must be an int, got "
                f"{type(self.total_width).__name__}"
            )
        if self.total_width < 1:
            raise ConfigurationError(
                f"total_width must be >= 1, got {self.total_width}"
            )
        object.__setattr__(
            self, "num_tams", _frozen_counts(self.num_tams)
        )
        if isinstance(self.num_tams, tuple):
            if not self.num_tams:
                raise ConfigurationError("num_tams iterable is empty")
            for count in self.num_tams:
                if not isinstance(count, int) or count < 1:
                    raise ConfigurationError(
                        f"TAM counts must be ints >= 1, got {count!r}"
                    )
        elif isinstance(self.num_tams, int) and self.num_tams < 1:
            raise ConfigurationError(
                f"num_tams must be >= 1, got {self.num_tams}"
            )
        if not isinstance(self.polish_top_k, int) or self.polish_top_k < 1:
            raise ConfigurationError(
                f"polish_top_k must be >= 1, got {self.polish_top_k}"
            )
        if not isinstance(self.exact_node_limit, int) \
                or self.exact_node_limit < 1:
            raise ConfigurationError(
                f"exact_node_limit must be >= 1, got "
                f"{self.exact_node_limit!r}"
            )
        if not isinstance(self.exact_time_limit, (int, float)) \
                or self.exact_time_limit <= 0:
            raise ConfigurationError(
                f"exact_time_limit must be > 0, got "
                f"{self.exact_time_limit!r}"
            )
        object.__setattr__(
            self, "exact_time_limit", float(self.exact_time_limit)
        )
        if not isinstance(self.enumerator, str):
            raise ConfigurationError(
                f"enumerator must be a string, got {self.enumerator!r}"
            )
        if not isinstance(self.sweep_engine, str):
            raise ConfigurationError(
                f"sweep_engine must be a string, got {self.sweep_engine!r}"
            )
        if self.prune is not None \
                and not isinstance(self.prune, (bool, str)):
            raise ConfigurationError(
                f"prune must be None, a bool or a string mode, got "
                f"{self.prune!r}"
            )
        # The mode axis is structural: it gates which *other* fields
        # are legal, so unlike enumerator/sweep_engine it is checked
        # here rather than per grid point.
        if self.mode not in MODES:
            raise ConfigurationError(
                f"mode must be one of {MODES}, got {self.mode!r}"
            )
        if not isinstance(self.search_strategy, str):
            raise ConfigurationError(
                f"search_strategy must be a string, got "
                f"{self.search_strategy!r}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) \
                or self.seed < 0:
            raise ConfigurationError(
                f"seed must be an int >= 0, got {self.seed!r}"
            )
        if not isinstance(self.time_budget, (int, float)) \
                or isinstance(self.time_budget, bool) \
                or self.time_budget <= 0:
            raise ConfigurationError(
                f"time_budget must be > 0, got {self.time_budget!r}"
            )
        object.__setattr__(self, "time_budget", float(self.time_budget))
        if not isinstance(self.eval_budget, int) \
                or isinstance(self.eval_budget, bool) \
                or self.eval_budget < 1:
            raise ConfigurationError(
                f"eval_budget must be an int >= 1, got "
                f"{self.eval_budget!r}"
            )
        if not isinstance(self.target_gap, (int, float)) \
                or isinstance(self.target_gap, bool) \
                or self.target_gap < 0:
            raise ConfigurationError(
                f"target_gap must be >= 0, got {self.target_gap!r}"
            )
        object.__setattr__(self, "target_gap", float(self.target_gap))
        if self.mode != "search":
            stray = [
                key for key in SEARCH_ONLY_OPTIONS
                if getattr(self, key) != OPTION_DEFAULTS[key]
            ]
            if stray:
                raise ConfigurationError(
                    f"option(s) {', '.join(stray)} only apply to "
                    f'mode="search" (this spec has mode='
                    f"{self.mode!r})"
                )

    @classmethod
    def from_options(
        cls,
        total_width: int,
        num_tams: Union[int, Iterable[int], None] = None,
        options: Optional[Mapping[str, Any]] = None,
    ) -> "OptimizeSpec":
        """Build a spec from a sparse engine-style options mapping.

        The inverse of :meth:`engine_options`.  Unknown option keys
        raise :class:`~repro.exceptions.ConfigurationError` — this is
        the drift guard that used to be a runtime ``TypeError`` deep
        inside a pool worker.
        """
        options = dict(options or {})
        unknown = sorted(set(options) - set(OPTION_DEFAULTS))
        if unknown:
            raise ConfigurationError(
                f"unknown co_optimize option(s): {', '.join(unknown)} "
                f"(valid: {', '.join(sorted(OPTION_DEFAULTS))})"
            )
        return cls(total_width=total_width, num_tams=num_tams, **options)

    def engine_options(self) -> Dict[str, Any]:
        """The non-default option fields, as sparse keyword arguments.

        This is what :class:`~repro.engine.batch.BatchJob.options`
        carries: sparse on purpose, so the engine's own defaulting
        (e.g. ``evaluate_point`` switching unspecified ``prune`` to
        the outcome-identical ``"lb"``) still applies.
        """
        return {
            key: getattr(self, key)
            for key, default in OPTION_DEFAULTS.items()
            if getattr(self, key) != default
        }

    def with_width(self, total_width: int) -> "OptimizeSpec":
        """This spec at a different TAM budget (all knobs shared)."""
        return dataclasses.replace(self, total_width=total_width)

    def to_dict(self) -> Dict[str, Any]:
        """Schema-versioned plain-data form (JSON-ready)."""
        counts: Union[int, List[int], None] = (
            list(self.num_tams)
            if isinstance(self.num_tams, tuple) else self.num_tams
        )
        record: Dict[str, Any] = {
            "schema": SPEC_SCHEMA_VERSION,
            "kind": "optimize_spec",
            "total_width": self.total_width,
            "num_tams": counts,
        }
        record.update(
            {key: getattr(self, key) for key in OPTION_DEFAULTS}
        )
        return record

    @classmethod
    def from_dict(cls, data: Any) -> "OptimizeSpec":
        """Rebuild a spec, rejecting unknown versions and fields."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"optimize spec must be an object, got "
                f"{type(data).__name__}"
            )
        if data.get("schema") != SPEC_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported spec schema {data.get('schema')!r}; "
                f"this build reads version {SPEC_SCHEMA_VERSION}"
            )
        if data.get("kind") != "optimize_spec":
            raise ConfigurationError(
                f"expected kind 'optimize_spec', got {data.get('kind')!r}"
            )
        body = {
            key: value for key, value in data.items()
            if key not in ("schema", "kind")
        }
        if "total_width" not in body:
            raise ConfigurationError(
                "optimize spec record missing 'total_width'"
            )
        num_tams = body.pop("num_tams", None)
        if isinstance(num_tams, list):
            num_tams = tuple(num_tams)
        return cls.from_options(
            body.pop("total_width"), num_tams=num_tams, options=body
        )

    def canonical_payload(self, fingerprint: str) -> Dict[str, Any]:
        """This spec's share of a grid's canonical content."""
        return _job_payload(
            fingerprint, self.total_width, self.num_tams,
            {key: getattr(self, key) for key in OPTION_DEFAULTS},
        )

    def canonical_key(self, fingerprint: str = "") -> str:
        """Content hash of this spec (optionally bound to a SOC)."""
        return _digest({
            "spec": SPEC_SCHEMA_VERSION,
            "jobs": [self.canonical_payload(fingerprint)],
        })


@dataclass(frozen=True)
class GridSpec:
    """A whole submission: SOC sources × per-point optimize specs.

    ``socs`` are *sources* — embedded benchmark names or ``.soc``
    paths — resolved by :func:`repro.soc.loader.load_source` at
    execution time, exactly like the CLI and the IPC protocol resolve
    them; the canonical key hashes the resolved SOCs' *content*
    fingerprints, so renaming a file or a benchmark alias keeps the
    memo warm while editing a core invalidates it.

    ``runner`` holds execution hints (worker counts, transport
    toggles, ...) that do not affect results: serialized, but
    deliberately excluded from :meth:`canonical_key` so a grid run
    with 4 workers memo-hits the same grid run with 16.

    Grid-point order is SOC-major, points (typically widths) fastest
    — the same order every front-end has always used.
    """

    socs: Tuple[str, ...]
    points: Tuple[OptimizeSpec, ...]
    runner: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "socs", tuple(self.socs))
        object.__setattr__(self, "points", tuple(self.points))
        if isinstance(self.runner, Mapping):
            object.__setattr__(
                self, "runner", tuple(sorted(self.runner.items()))
            )
        else:
            object.__setattr__(self, "runner", tuple(self.runner))
        if not self.socs:
            raise ConfigurationError("a grid needs at least one SOC")
        if not self.points:
            raise ConfigurationError(
                "a grid needs at least one optimize spec"
            )
        for source in self.socs:
            if not isinstance(source, str) or not source:
                raise ConfigurationError(
                    f"SOC sources must be non-empty strings, got "
                    f"{source!r}"
                )
        for point in self.points:
            if not isinstance(point, OptimizeSpec):
                raise ConfigurationError(
                    f"grid points must be OptimizeSpec, got "
                    f"{type(point).__name__}"
                )

    @classmethod
    def from_axes(
        cls,
        socs: Sequence[str],
        widths: Sequence[int],
        num_tams: Union[int, Iterable[int], None] = None,
        options: Optional[Mapping[str, Any]] = None,
        runner: Union[Mapping[str, Any],
                      Tuple[Tuple[str, Any], ...]] = (),
    ) -> "GridSpec":
        """The common SOCs × widths grid, every point sharing knobs."""
        width_list = list(widths)
        if not width_list:
            raise ConfigurationError("a grid needs at least one width")
        counts = _frozen_counts(num_tams)
        return cls(
            socs=tuple(str(source) for source in socs),
            points=tuple(
                OptimizeSpec.from_options(
                    int(width), num_tams=counts, options=options
                )
                for width in width_list
            ),
            runner=runner,
        )

    @property
    def widths(self) -> Tuple[int, ...]:
        """The per-point TAM budgets, in grid order."""
        return tuple(point.total_width for point in self.points)

    def runner_options(self) -> Dict[str, Any]:
        """The frozen ``runner`` hint pairs as a dictionary."""
        return dict(self.runner)

    def resolve_socs(self, resolver: Any = None) -> List["Soc"]:
        """The SOC objects this grid's sources name, in order."""
        if resolver is None:
            from repro.soc.loader import load_source as resolver
        return [resolver(source) for source in self.socs]

    def jobs(self, resolver: Any = None) -> List["BatchJob"]:
        """The engine jobs this grid describes, in canonical order."""
        from repro.engine.batch import BatchJob

        return [
            BatchJob(
                soc=soc,
                total_width=point.total_width,
                num_tams=point.num_tams,
                options=point.engine_options(),
            )
            for soc in self.resolve_socs(resolver)
            for point in self.points
        ]

    def canonical_key(self, resolver: Any = None) -> str:
        """Content hash of the resolved grid; the memo key.

        Hashes SOC *content* fingerprints (not names), normalized
        options (defaults filled, ``B`` ≡ ``(B,)``), and the spec
        schema version.  Equal to :func:`jobs_canonical_key` over
        :meth:`jobs`, so a grid memoizes identically however it was
        expressed.  ``runner`` hints are excluded.
        """
        return _digest({
            "spec": SPEC_SCHEMA_VERSION,
            "jobs": [
                point.canonical_payload(soc_fingerprint(soc))
                for soc in self.resolve_socs(resolver)
                for point in self.points
            ],
        })

    def describe(self) -> str:
        """Short human-readable summary for logs and progress lines."""
        widths = sorted(set(self.widths))
        return (
            f"{len(self.socs)} SOC(s) x {len(self.points)} point(s) "
            f"(W in {widths})"
        )

    def to_dict(self) -> Dict[str, Any]:
        """Schema-versioned plain-data form (JSON-ready)."""
        return {
            "schema": SPEC_SCHEMA_VERSION,
            "kind": "grid_spec",
            "socs": list(self.socs),
            "points": [point.to_dict() for point in self.points],
            "runner": {key: value for key, value in self.runner},
        }

    @classmethod
    def from_dict(cls, data: Any) -> "GridSpec":
        """Rebuild a grid spec, rejecting unknown versions and fields."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"grid spec must be an object, got {type(data).__name__}"
            )
        if data.get("schema") != SPEC_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported spec schema {data.get('schema')!r}; "
                f"this build reads version {SPEC_SCHEMA_VERSION}"
            )
        if data.get("kind") != "grid_spec":
            raise ConfigurationError(
                f"expected kind 'grid_spec', got {data.get('kind')!r}"
            )
        unknown = sorted(
            set(data) - {"schema", "kind", "socs", "points", "runner"}
        )
        if unknown:
            raise ConfigurationError(
                f"unknown grid spec field(s): {', '.join(unknown)}"
            )
        socs = data.get("socs")
        points = data.get("points")
        if not isinstance(socs, list) or not socs:
            raise ConfigurationError(
                "grid spec needs a non-empty 'socs' list"
            )
        if not isinstance(points, list) or not points:
            raise ConfigurationError(
                "grid spec needs a non-empty 'points' list"
            )
        runner = data.get("runner") or {}
        if not isinstance(runner, dict):
            raise ConfigurationError("'runner' must be an object")
        return cls(
            socs=tuple(str(source) for source in socs),
            points=tuple(
                OptimizeSpec.from_dict(point) for point in points
            ),
            runner=tuple(sorted(runner.items())),
        )
