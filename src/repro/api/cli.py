"""The shared argparse → spec translator for every CLI surface.

``cooptimize``, ``exhaustive``, ``batch`` and ``submit`` all describe
the same thing — which SOC(s), which TAM budget(s), which counts,
which knobs — but each historically registered its own flags and
built its own keyword soup, so the surfaces drifted (different
``--bmax`` wiring, knobs present on one subcommand and missing on
another).  This module is the single place those flags are declared
and the single function that turns a parsed namespace into typed
:mod:`repro.api` specs:

* :func:`add_spec_arguments` registers the grid flags (``-W``,
  ``-B``, ``--bmax``, and the optimize knobs) on a subparser;
* :func:`tam_counts_from_args` / :func:`optimize_options_from_args`
  are the one resolution rule for counts and knobs;
* :func:`spec_from_args` / :func:`grid_spec_from_args` produce the
  :class:`~repro.api.specs.OptimizeSpec` / :class:`~repro.api.specs.
  GridSpec` every execution path consumes.

Because ``batch`` and ``submit`` build their grids through the same
translator, a grid run locally and the same grid submitted to a
server produce byte-identical canonical keys — which is what makes
the server's persisted memo answer either one.
"""

from __future__ import annotations

import argparse
from typing import Any, Dict, Tuple, Union

from repro.api.specs import DEFAULT_MAX_TAMS, GridSpec, OptimizeSpec

#: ``--prune`` choice → ``co_optimize(prune=...)`` value.
PRUNE_MODES: Dict[str, Union[bool, str]] = {
    "abort": True,
    "lb": "lb",
    "none": False,
}


def _point_timeout(value: str) -> float:
    """Parse ``--point-timeout``: a positive number of seconds."""
    try:
        timeout = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number of seconds, got {value!r}"
        ) from None
    if timeout <= 0:
        raise argparse.ArgumentTypeError(
            f"point timeout must be positive, got {value!r}"
        )
    return timeout


def _shard_policy(value: str) -> Union[int, str]:
    """Parse ``--shard``: 'auto', 'off' (→ 0), or a shard count."""
    if value == "auto":
        return "auto"
    if value == "off":
        return 0
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'auto', 'off' or an integer, got {value!r}"
        ) from None


def add_spec_arguments(
    parser: argparse.ArgumentParser,
    multi_width: bool = False,
    bmax_default: int = DEFAULT_MAX_TAMS,
    knobs: bool = True,
) -> None:
    """Register the shared grid/spec flags on ``parser``.

    ``multi_width`` switches ``-W`` between one budget (``width``,
    the single-point subcommands) and a sweep list (``widths``).
    ``knobs`` adds the optimize knobs (``--no-polish``, ``--prune``);
    subcommands whose backend ignores them (``exhaustive``) leave
    them off.
    """
    if multi_width:
        parser.add_argument(
            "-W", "--widths", type=int, nargs="+", required=True,
            help="TAM widths to sweep",
        )
        parser.add_argument(
            "--shard", type=_shard_policy, default=None,
            metavar="{auto,off,N}",
            help="intra-job partition-sweep sharding: 'auto' (split "
                 "a job across idle pool workers when its partition "
                 "space is large), 'off', or an explicit shard "
                 "count.  Results are identical at any setting; "
                 "unset keeps the executing runner's policy",
        )
        parser.add_argument(
            "--point-timeout", type=_point_timeout, default=None,
            metavar="SECONDS",
            help="per-point wall-clock deadline (pool mode): a point "
                 "that exceeds it is recorded/raised as a "
                 "DeadlineError.  An execution hint like --shard — "
                 "excluded from the grid's canonical key",
        )
    else:
        parser.add_argument(
            "-W", "--width", type=int, required=True,
            help="total TAM width",
        )
    parser.add_argument(
        "-B", "--num-tams", type=int, default=None,
        help="fix the number of TAMs (P_PAW)",
    )
    parser.add_argument(
        "--bmax", type=int, default=bmax_default,
        help=f"max TAMs for the P_NPAW sweep "
             f"(default {bmax_default})",
    )
    if knobs:
        parser.add_argument(
            "--no-polish", action="store_true",
            help="skip the exact final optimization step",
        )
        parser.add_argument(
            "--prune", choices=tuple(PRUNE_MODES), default=None,
            help="partition-sweep pruning: the paper's "
                 "best-known-time abort, the kernel's "
                 "outcome-identical lower-bound skip on top, or "
                 "none (ablation).  Unset, each surface keeps its "
                 "default (abort for cooptimize, lb in the "
                 "engine/service paths)",
        )


def add_search_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the anytime-search knobs (``repro-tam search``).

    Defaults mirror :data:`repro.api.specs.OPTION_DEFAULTS` so the
    CLI, the typed spec, and the engine resolve a search identically.
    """
    parser.add_argument(
        "--strategy", choices=("sa", "ga"), default="sa",
        help="metaheuristic: simulated annealing or the "
             "steady-state genetic algorithm (default sa)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed — the sole source of randomness; a fixed "
             "seed is bit-identical at any worker count "
             "(default 0)",
    )
    parser.add_argument(
        "--time-budget", type=float, default=5.0,
        help="wall-clock budget in seconds (default 5.0)",
    )
    parser.add_argument(
        "--eval-budget", type=int, default=20000,
        help="candidate-evaluation budget, split across islands "
             "(default 20000)",
    )
    parser.add_argument(
        "--target-gap", type=float, default=0.0,
        help="stop early once the incumbent is within this "
             "relative gap of the lower bound (default 0.0: only "
             "a proven optimum stops early)",
    )


def search_spec_from_args(
    args: argparse.Namespace, width: int,
) -> OptimizeSpec:
    """One search point's :class:`OptimizeSpec` at ``width``."""
    options = optimize_options_from_args(args)
    options.update(
        mode="search",
        search_strategy=args.strategy,
        seed=args.seed,
        time_budget=args.time_budget,
        eval_budget=args.eval_budget,
        target_gap=args.target_gap,
    )
    return OptimizeSpec.from_options(
        width,
        num_tams=tam_counts_from_args(args),
        options=options,
    )


def tam_counts_from_args(
    args: argparse.Namespace,
) -> Union[int, Tuple[int, ...]]:
    """The TAM count(s) a namespace asks for — one rule for all CLIs.

    ``-B`` wins; otherwise the P_NPAW default is the flat tuple
    ``1..bmax``.  Counts above a given point's width are skipped by
    the partition sweep, so the flat tuple matches ``co_optimize``'s
    per-width default at every budget.
    """
    if args.num_tams is not None:
        return args.num_tams
    return tuple(range(1, args.bmax + 1))


def optimize_options_from_args(
    args: argparse.Namespace,
) -> Dict[str, Any]:
    """Sparse optimize knobs from a namespace.

    Only knobs the user actually set are included, so each execution
    path keeps its own default for the rest (in particular, an
    explicit ``--prune abort`` *forces* abort-only pruning through
    ``batch``/``submit``, while leaving the flag unset keeps the
    engine's outcome-identical ``"lb"`` default there).
    """
    options: Dict[str, Any] = {}
    if getattr(args, "no_polish", False):
        options["polish"] = False
    prune = getattr(args, "prune", None)
    if prune is not None:
        options["prune"] = PRUNE_MODES[prune]
    return options


def spec_from_args(
    args: argparse.Namespace, width: int,
) -> OptimizeSpec:
    """One point's :class:`OptimizeSpec` at ``width``."""
    return OptimizeSpec.from_options(
        width,
        num_tams=tam_counts_from_args(args),
        options=optimize_options_from_args(args),
    )


def grid_spec_from_args(args: argparse.Namespace) -> GridSpec:
    """The :class:`GridSpec` a ``batch``/``submit`` namespace asks for.

    Execution hints (``--shard``, ``--point-timeout``) land in the
    spec's ``runner`` mapping — serialized with the grid but excluded
    from its canonical key, so hints never split the result memo.
    """
    runner: Dict[str, Any] = {}
    shard = getattr(args, "shard", None)
    if shard is not None:
        runner["shard"] = shard
    point_timeout = getattr(args, "point_timeout", None)
    if point_timeout is not None:
        runner["point_timeout"] = point_timeout
    return GridSpec.from_axes(
        args.socs,
        args.widths,
        num_tams=tam_counts_from_args(args),
        options=optimize_options_from_args(args),
        runner=runner,
    )
