"""``repro.api`` — the one canonical description of a job.

Typed, frozen, schema-versioned specs (:class:`OptimizeSpec`,
:class:`GridSpec`) shared by the Python API, the batch engine, the
exploration service and every CLI subcommand, plus the versioned
wire envelopes (:class:`JobRequest`, :class:`JobEvent`) the IPC
protocol is built from.  See :mod:`repro.api.specs` for the design
rationale and DESIGN.md appendix A for the JSON schema and
compatibility policy.
"""

from repro.api.envelopes import (
    EVENT_KINDS,
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS,
    JobEvent,
    JobRequest,
)
from repro.api.specs import (
    DEFAULT_MAX_TAMS,
    OPTION_DEFAULTS,
    SPEC_SCHEMA_VERSION,
    GridSpec,
    OptimizeSpec,
    jobs_canonical_key,
)

__all__ = [
    "DEFAULT_MAX_TAMS",
    "EVENT_KINDS",
    "OPTION_DEFAULTS",
    "PROTOCOL_VERSION",
    "SPEC_SCHEMA_VERSION",
    "SUPPORTED_PROTOCOL_VERSIONS",
    "GridSpec",
    "JobEvent",
    "JobRequest",
    "OptimizeSpec",
    "jobs_canonical_key",
]
