"""Versioned wire envelopes for the exploration-service protocol.

The IPC layer (:mod:`repro.service.ipc`) is line-oriented JSON; these
dataclasses are the typed forms of the two structured payloads that
cross it:

* :class:`JobRequest` — one decoded request line.  Protocol version 2
  carries a typed :class:`~repro.api.specs.GridSpec` under ``spec``;
  version 1 (no ``v`` field) keeps its legacy loose fields, which the
  server still accepts verbatim.  Unknown versions are rejected at
  the envelope, before any op dispatch.
* :class:`JobEvent` — one per-grid-point completion record streamed
  by the v2 ``events`` op, replacing poll/wait loops: the server
  pushes a line as each point finishes, then a final ``done`` line.

Compatibility policy: a server speaks every version in
:data:`SUPPORTED_PROTOCOL_VERSIONS`; requests without ``v`` are v1.
Adding fields to a version is allowed (receivers ignore unknown
*response* fields); changing the meaning of a field requires a new
version.  See DESIGN.md, appendix A, for the full policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.api.specs import GridSpec
from repro.exceptions import ConfigurationError

#: The newest protocol version this build speaks.
#:
#: Version history: 1 — the legacy loose-field dicts; 2 — typed
#: ``spec`` submissions and the streaming ``events`` op; 3 — the
#: tenancy fields (``token`` bearer auth and ``priority``) on the
#: request envelope.  v3 is additive: v1/v2 request dicts are
#: accepted byte-compatible and run as the anonymous client.
PROTOCOL_VERSION = 3

#: Every protocol version this build accepts.  Requests without a
#: ``v`` field are treated as version 1.
SUPPORTED_PROTOCOL_VERSIONS: Tuple[int, ...] = (1, 2, 3)

#: Event kinds a job stream may carry.  ``point``/``failed`` record
#: one finished grid point each; ``incumbent`` records one strict
#: improvement of a ``mode="search"`` point's anytime incumbent (the
#: live-convergence feed), always preceding that point's terminal
#: event.  Version note: ``incumbent`` is an *additive* v2 extension
#: — v2 receivers ignore unknown response kinds per the
#: compatibility policy, so no version bump is needed.
EVENT_KINDS: Tuple[str, ...] = ("point", "failed", "incumbent")


@dataclass(frozen=True)
class JobRequest:
    """One decoded request line, version-checked.

    ``extra`` preserves fields outside the typed set (v1 submit's
    ``socs``/``widths``/``num_tams``/``bmax``/``options``, future
    additions) as sorted pairs, so the envelope is lossless for every
    accepted version.
    """

    op: str
    version: int = PROTOCOL_VERSION
    spec: Optional[GridSpec] = None
    job_id: Optional[str] = None
    timeout: Optional[float] = None
    start: int = 0
    #: v3 tenancy fields.  ``token`` is the bearer credential the
    #: server resolves to a client identity (never echoed back);
    #: ``priority`` optionally *lowers* a submission below the
    #: client's class.  Both decode from v1/v2 dicts too (harmlessly
    #: absent there), so old clients stay byte-compatible.
    token: Optional[str] = None
    priority: Optional[str] = None
    extra: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.op, str) or not self.op:
            raise ConfigurationError(
                f"request op must be a non-empty string, got {self.op!r}"
            )
        if self.version not in SUPPORTED_PROTOCOL_VERSIONS:
            raise ConfigurationError(
                f"unsupported protocol version {self.version!r}; "
                f"this server speaks "
                f"{list(SUPPORTED_PROTOCOL_VERSIONS)}"
            )
        object.__setattr__(self, "extra", tuple(self.extra))

    def extra_dict(self) -> Dict[str, Any]:
        """The preserved loose fields as a dictionary."""
        return dict(self.extra)

    def to_dict(self) -> Dict[str, Any]:
        """The request as one wire-ready JSON object."""
        record: Dict[str, Any] = {"v": self.version, "op": self.op}
        if self.spec is not None:
            record["spec"] = self.spec.to_dict()
        if self.job_id is not None:
            record["job"] = self.job_id
        if self.timeout is not None:
            record["timeout"] = self.timeout
        if self.start:
            record["from"] = self.start
        if self.token is not None:
            record["token"] = self.token
        if self.priority is not None:
            record["priority"] = self.priority
        record.update(self.extra_dict())
        return record

    @classmethod
    def from_dict(cls, data: Any) -> "JobRequest":
        """Decode one request object; rejects unsupported versions."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"request must be an object, got {type(data).__name__}"
            )
        version = data.get("v", 1)
        if not isinstance(version, int) or isinstance(version, bool) \
                or version not in SUPPORTED_PROTOCOL_VERSIONS:
            raise ConfigurationError(
                f"unsupported protocol version {version!r}; "
                f"this server speaks "
                f"{list(SUPPORTED_PROTOCOL_VERSIONS)}"
            )
        op = data.get("op")
        if not isinstance(op, str) or not op:
            raise ConfigurationError(
                f"request op must be a non-empty string, got {op!r}"
            )
        spec = data.get("spec")
        timeout = data.get("timeout")
        start = data.get("from", 0)
        if not isinstance(start, int) or isinstance(start, bool) \
                or start < 0:
            raise ConfigurationError(
                f"'from' must be a non-negative int, got {start!r}"
            )
        job_id = data.get("job")
        token = data.get("token")
        if token is not None and (
            not isinstance(token, str) or not token
        ):
            raise ConfigurationError(
                f"'token' must be a non-empty string, got {token!r}"
            )
        priority = data.get("priority")
        if priority is not None and not isinstance(priority, str):
            raise ConfigurationError(
                f"'priority' must be a string, got {priority!r}"
            )
        extra = tuple(sorted(
            (key, value) for key, value in data.items()
            if key not in (
                "v", "op", "spec", "job", "timeout", "from",
                "token", "priority",
            )
        ))
        return cls(
            op=op,
            version=version,
            spec=None if spec is None else GridSpec.from_dict(spec),
            job_id=None if job_id is None else str(job_id),
            timeout=None if timeout is None else float(timeout),
            start=start,
            token=token,
            priority=priority,
            extra=extra,
        )


@dataclass(frozen=True)
class JobEvent:
    """One per-point completion record in a job's event stream.

    ``seq`` numbers events from 0 in emission order (the resume
    cursor for the ``events`` op's ``from`` field); ``index`` is the
    grid-point slot the record fills, ``total`` the grid size, and
    ``payload`` the serialized point — a sweep-point record for
    ``kind="point"``, a failure record for ``kind="failed"``, an
    improvement record (``eval``/``island``/``time``/``gap``) for
    ``kind="incumbent"``.
    """

    job_id: str
    seq: int
    kind: str
    index: int
    total: int
    payload: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"event kind must be one of {EVENT_KINDS}, "
                f"got {self.kind!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """The event as one wire-ready JSON object."""
        return {
            "v": PROTOCOL_VERSION,
            "kind": self.kind,
            "job": self.job_id,
            "seq": self.seq,
            "index": self.index,
            "total": self.total,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "JobEvent":
        """Decode one event object from a stream line."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"event must be an object, got {type(data).__name__}"
            )
        try:
            return cls(
                job_id=str(data["job"]),
                seq=int(data["seq"]),
                kind=str(data["kind"]),
                index=int(data["index"]),
                total=int(data["total"]),
                payload=dict(data.get("payload") or {}),
            )
        except KeyError as missing:
            raise ConfigurationError(
                f"event record missing field {missing}"
            ) from None
