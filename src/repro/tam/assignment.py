"""Core→bus assignment results, in the paper's notation.

An :class:`AssignmentResult` is the common currency of the assignment
layer (heuristic, exact, ILP) and the optimization pipelines: the bus
widths, the assignment vector, the per-bus summed testing times and
the SOC testing time (the maximum bus time), plus an ``optimal`` flag
set only by exact solvers that ran to proven optimality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.exceptions import ValidationError
from repro.tam.bus import TamArchitecture


@dataclass(frozen=True)
class AssignmentResult:
    """A complete solution to problem P_AW for one width partition.

    Attributes
    ----------
    widths:
        Bus widths (the TAM architecture).
    assignment:
        For each core (by SOC order), the 0-based index of its bus.
    bus_times:
        Summed testing time per bus, in clock cycles.
    testing_time:
        SOC testing time: ``max(bus_times)``.
    optimal:
        True only when produced by an exact solver that proved
        optimality for this width partition.
    """

    widths: Tuple[int, ...]
    assignment: Tuple[int, ...]
    bus_times: Tuple[int, ...]
    testing_time: int
    optimal: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "widths", tuple(self.widths))
        object.__setattr__(self, "assignment", tuple(self.assignment))
        object.__setattr__(self, "bus_times", tuple(self.bus_times))
        num_buses = len(self.widths)
        if len(self.bus_times) != num_buses:
            raise ValidationError(
                f"{len(self.bus_times)} bus times for {num_buses} buses"
            )
        for bus in self.assignment:
            if not 0 <= bus < num_buses:
                raise ValidationError(
                    f"assignment references bus {bus}, "
                    f"but only {num_buses} buses exist"
                )
        if self.testing_time != max(self.bus_times):
            raise ValidationError(
                f"testing_time {self.testing_time} != max bus time "
                f"{max(self.bus_times)}"
            )

    @property
    def architecture(self) -> TamArchitecture:
        """The width partition as a :class:`TamArchitecture`."""
        return TamArchitecture(self.widths)

    @property
    def num_tams(self) -> int:
        return len(self.widths)

    def vector_notation(self) -> str:
        """The paper's 1-based assignment vector, e.g. ``(2,1,2,...)``.

        Position ``i`` is core ``i+1``; the entry is the 1-based bus
        number the core is assigned to.
        """
        return "(" + ",".join(str(bus + 1) for bus in self.assignment) + ")"

    def cores_on_bus(self, bus: int) -> Tuple[int, ...]:
        """0-based core indices assigned to 0-based ``bus``."""
        return tuple(
            core for core, assigned in enumerate(self.assignment)
            if assigned == bus
        )


def evaluate_assignment(
    times: Sequence[Sequence[int]],
    widths: Sequence[int],
    assignment: Sequence[int],
    optimal: bool = False,
) -> AssignmentResult:
    """Build an :class:`AssignmentResult` from an assignment vector.

    Parameters
    ----------
    times:
        ``times[i][j]`` — testing time of core ``i`` on bus ``j``.
    widths:
        Bus widths (only recorded; the times already reflect them).
    assignment:
        0-based bus index per core.
    """
    num_buses = len(widths)
    if len(assignment) != len(times):
        raise ValidationError(
            f"assignment length {len(assignment)} != {len(times)} cores"
        )
    bus_times = [0] * num_buses
    for core_index, bus in enumerate(assignment):
        if not 0 <= bus < num_buses:
            raise ValidationError(
                f"core {core_index}: bus {bus} out of range 0..{num_buses-1}"
            )
        bus_times[bus] += times[core_index][bus]
    return AssignmentResult(
        widths=tuple(widths),
        assignment=tuple(assignment),
        bus_times=tuple(bus_times),
        testing_time=max(bus_times),
        optimal=optimal,
    )
