"""Test access mechanism (TAM) model — the test-bus architecture.

The paper uses the *test bus* model: the SOC's ``W`` TAM wires are
partitioned into ``B`` buses; each core connects to exactly one bus;
buses operate in parallel and cores sharing a bus are tested serially.

* :class:`~repro.tam.bus.TamArchitecture` — an ordered width partition;
* :class:`~repro.tam.assignment.AssignmentResult` — cores→buses
  assignment with its per-bus times and SOC testing time, rendered in
  the paper's vector notation.
"""

from repro.tam.bus import TamArchitecture
from repro.tam.assignment import AssignmentResult, evaluate_assignment

__all__ = ["TamArchitecture", "AssignmentResult", "evaluate_assignment"]
