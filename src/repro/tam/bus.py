"""The test-bus TAM architecture: an ordered partition of TAM width."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class TamArchitecture:
    """An ordered partition of the SOC's TAM width into test buses.

    Order is preserved (results quote partitions like ``5+3+8``), but
    equality-up-to-reordering is available via :meth:`canonical`.
    """

    widths: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "widths", tuple(self.widths))
        if not self.widths:
            raise ValidationError("a TAM architecture needs >= 1 bus")
        for width in self.widths:
            if width < 1:
                raise ValidationError(
                    f"bus widths must be >= 1, got {width}"
                )

    @property
    def num_tams(self) -> int:
        """Number of test buses ``B``."""
        return len(self.widths)

    @property
    def total_width(self) -> int:
        """Total TAM width ``W``."""
        return sum(self.widths)

    def __iter__(self) -> Iterator[int]:
        return iter(self.widths)

    def __len__(self) -> int:
        return len(self.widths)

    def __getitem__(self, index: int) -> int:
        return self.widths[index]

    def canonical(self) -> "TamArchitecture":
        """The same architecture with buses sorted by ascending width.

        Two architectures are functionally identical iff their
        canonical forms are equal — bus order never affects testing
        time under the test-bus model.
        """
        return TamArchitecture(tuple(sorted(self.widths)))

    def notation(self) -> str:
        """The paper's ``w1+w2+...+wB`` partition notation."""
        return "+".join(str(width) for width in self.widths)
