"""Command-line interface.

Subcommands::

    repro-tam cooptimize <file.soc | benchmark> -W 32 [--bmax 10]
    repro-tam exhaustive <file.soc | benchmark> -W 32 -B 2
    repro-tam analyze    <file.soc | benchmark> -W 32
    repro-tam batch      <sources...> -W 16 24 32 [--jobs N]
    repro-tam describe   <file.soc | benchmark>

Each positional SOC argument is either a path to a ``.soc`` file in
the dialect of :mod:`repro.soc.itc02`, or the name of an embedded
benchmark (``d695``, ``p21241``, ``p31108``, ``p93791``).

Batch sweeps
------------
``repro-tam batch`` evaluates the full SOCs × widths grid through
:class:`repro.engine.BatchRunner`: jobs fan out over a process pool
(``--jobs``, default one per CPU; ``--jobs 1`` forces inline
sequential execution) and each worker reuses its wrapper time tables
across the jobs it receives.  Every grid point is reported with its
testing time, optimality-certificate gap, and wire-cycle utilization;
``--json`` emits the same records as a JSON array.  Results are
identical to running ``cooptimize`` per point — only faster::

    repro-tam batch d695 p21241 p31108 p93791 -W 16 24 32 --jobs 4
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.engine import BatchRunner, grid_rows
from repro.engine.batch import BATCH_COLUMNS
from repro.exceptions import ReproError
from repro.optimize.co_optimize import co_optimize
from repro.optimize.exhaustive import exhaustive_optimize
from repro.report.tables import TextTable
from repro.schedule.session import build_schedule
from repro.soc.complexity import test_complexity
from repro.soc.data import benchmark_names, get_benchmark
from repro.soc.itc02 import load_soc
from repro.soc.soc import Soc


def _load(source: str) -> Soc:
    """Load a SOC from a benchmark name or a .soc file path."""
    if source in benchmark_names():
        return get_benchmark(source)
    path = Path(source)
    if not path.exists():
        raise ReproError(
            f"{source!r} is neither an embedded benchmark "
            f"({', '.join(benchmark_names())}) nor an existing file"
        )
    return load_soc(path)


def _cmd_describe(args: argparse.Namespace) -> int:
    soc = _load(args.soc)
    print(soc.describe())
    print(f"test complexity: {test_complexity(soc):.1f}")
    return 0


def _cmd_cooptimize(args: argparse.Namespace) -> int:
    soc = _load(args.soc)
    num_tams = (
        args.num_tams if args.num_tams
        else range(1, min(args.bmax, args.width) + 1)
    )
    result = co_optimize(
        soc,
        total_width=args.width,
        num_tams=num_tams,
        polish=not args.no_polish,
    )
    if args.json:
        from repro.report.serialize import co_optimization_to_dict, to_json
        print(to_json(co_optimization_to_dict(result)))
        return 0
    print(result.summary())
    print(f"assignment: {result.final.vector_notation()}")
    if args.gantt:
        tables = result.tables
        times = [
            [tables[c.name].time(w) for w in result.partition]
            for c in soc
        ]
        schedule = build_schedule(
            result.final, times, [c.name for c in soc]
        )
        print(schedule.gantt())
    if args.stats:
        table = TextTable(
            ["B", "unique", "enumerated", "completed", "efficiency"],
            title="Partition_evaluate pruning statistics",
        )
        for stats in result.search.stats:
            table.add_row([
                stats.num_tams,
                stats.num_unique,
                stats.num_enumerated,
                stats.num_completed,
                f"{stats.efficiency:.4f}",
            ])
        print(table.render())
    return 0


def _cmd_exhaustive(args: argparse.Namespace) -> int:
    soc = _load(args.soc)
    result = exhaustive_optimize(
        soc,
        total_width=args.width,
        num_tams=args.num_tams or args.bmax,
        total_time_limit=args.time_limit,
    )
    print(result.summary())
    print(f"assignment: {result.best.vector_notation()}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.certificates import certify
    from repro.analysis.utilization import analyze_utilization

    soc = _load(args.soc)
    num_tams = (
        args.num_tams if args.num_tams
        else range(1, min(args.bmax, args.width) + 1)
    )
    result = co_optimize(soc, total_width=args.width, num_tams=num_tams)

    print(result.summary())
    print(certify(soc, result.final, result.tables).describe())
    print(analyze_utilization(soc, result.final, result.tables).describe())
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    socs = [_load(source) for source in args.socs]
    # Counts above a point's width are skipped by the partition sweep,
    # so a flat 1..bmax tuple matches co_optimize's per-width default.
    num_tams = (
        args.num_tams if args.num_tams is not None
        else tuple(range(1, args.bmax + 1))
    )
    runner = BatchRunner(max_workers=args.jobs)
    grid = runner.run_grid(socs, args.widths, num_tams=num_tams)

    if args.json:
        from repro.report.serialize import sweep_point_to_dict, to_json
        records = [
            dict(sweep_point_to_dict(point), soc=job.soc.name)
            for job, point in grid
        ]
        print(to_json({"schema": 1, "kind": "batch", "points": records}))
        return 0

    table = TextTable(
        list(BATCH_COLUMNS), title="batch sweep"
    )
    for row in grid_rows(grid):
        table.add_row([row[column] for column in BATCH_COLUMNS])
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-tam",
        description="Wrapper/TAM co-optimization "
                    "(Iyengar/Chakrabarty/Marinissen, DATE 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    describe = sub.add_parser("describe", help="print SOC contents")
    describe.add_argument("soc", help=".soc file or benchmark name")
    describe.set_defaults(func=_cmd_describe)

    coopt = sub.add_parser(
        "cooptimize", help="run the paper's two-step method (P_NPAW)"
    )
    coopt.add_argument("soc", help=".soc file or benchmark name")
    coopt.add_argument("-W", "--width", type=int, required=True,
                       help="total TAM width")
    coopt.add_argument("-B", "--num-tams", type=int, default=None,
                       help="fix the number of TAMs (P_PAW)")
    coopt.add_argument("--bmax", type=int, default=10,
                       help="max TAMs for the P_NPAW sweep (default 10)")
    coopt.add_argument("--no-polish", action="store_true",
                       help="skip the exact final optimization step")
    coopt.add_argument("--gantt", action="store_true",
                       help="print the test-session Gantt chart")
    coopt.add_argument("--stats", action="store_true",
                       help="print partition-pruning statistics")
    coopt.add_argument("--json", action="store_true",
                       help="emit the result record as JSON")
    coopt.set_defaults(func=_cmd_cooptimize)

    exhaustive = sub.add_parser(
        "exhaustive", help="run the [8]-style exhaustive baseline"
    )
    exhaustive.add_argument("soc", help=".soc file or benchmark name")
    exhaustive.add_argument("-W", "--width", type=int, required=True)
    exhaustive.add_argument("-B", "--num-tams", type=int, default=None,
                            help="number of TAMs (default: --bmax)")
    exhaustive.add_argument("--bmax", type=int, default=2)
    exhaustive.add_argument("--time-limit", type=float, default=600.0,
                            help="total wall-clock budget in seconds")
    exhaustive.set_defaults(func=_cmd_exhaustive)

    analyze = sub.add_parser(
        "analyze",
        help="optimize, then report utilization and the optimality "
             "certificate",
    )
    analyze.add_argument("soc", help=".soc file or benchmark name")
    analyze.add_argument("-W", "--width", type=int, required=True)
    analyze.add_argument("-B", "--num-tams", type=int, default=None)
    analyze.add_argument("--bmax", type=int, default=10)
    analyze.set_defaults(func=_cmd_analyze)

    batch = sub.add_parser(
        "batch",
        help="sweep SOCs x widths in parallel via the batch engine",
    )
    batch.add_argument("socs", nargs="+",
                       help=".soc files and/or benchmark names")
    batch.add_argument("-W", "--widths", type=int, nargs="+",
                       required=True, help="TAM widths to sweep")
    batch.add_argument("-B", "--num-tams", type=int, default=None,
                       help="fix the number of TAMs (P_PAW)")
    batch.add_argument("--bmax", type=int, default=10,
                       help="max TAMs for the P_NPAW sweep (default 10)")
    batch.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: one per CPU; "
                            "1 = inline sequential)")
    batch.add_argument("--json", action="store_true",
                       help="emit the grid as a JSON record")
    batch.set_defaults(func=_cmd_batch)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output was piped into a consumer that closed early
        # (e.g. `repro-tam describe ... | head`); exit quietly.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
