"""Command-line interface.

Installed as the ``repro-tam`` console script; ``python -m repro``
from a source checkout runs the identical entry point.  Subcommands::

    repro-tam cooptimize <file.soc | benchmark> -W 32 [--bmax 10]
    repro-tam search     <file.soc | benchmark> -W 32 [--strategy ga]
    repro-tam exhaustive <file.soc | benchmark> -W 32 -B 2
    repro-tam analyze    <file.soc | benchmark> -W 32
    repro-tam batch      <sources...> -W 16 24 32 [--jobs N]
    repro-tam serve      [--port 7293] [--jobs N] [--cache-dir DIR]
    repro-tam submit     <sources...> -W 16 24 32 [--port 7293]
    repro-tam report     [--cache-dir DIR] [--view table|pareto|...]
    repro-tam tail       <job-id> [--port 7293]
    repro-tam describe   <file.soc | benchmark>
    repro-tam lint       [paths...] [--format json] [--write-schema]

Every optimizing subcommand translates its arguments into the same
typed :class:`repro.api.GridSpec` / :class:`repro.api.OptimizeSpec`
through one shared translator (:mod:`repro.api.cli`), so the
surfaces resolve widths, TAM counts and knobs identically — and a
grid run via ``batch`` memo-hits the same grid sent via ``submit``.

Each positional SOC argument is either a path to a ``.soc`` file in
the dialect of :mod:`repro.soc.itc02`, or the name of an embedded
benchmark (``d695``, ``p21241``, ``p31108``, ``p93791``).

Batch sweeps
------------
``repro-tam batch`` evaluates the full SOCs × widths grid through
:class:`repro.engine.BatchRunner`: jobs fan out over a process pool
(``--jobs``, default one per CPU; ``--jobs 1`` forces inline
sequential execution) and each worker reuses its wrapper time tables
across the jobs it receives.  Every grid point is reported with its
testing time, optimality-certificate gap, and wire-cycle utilization;
``--json`` emits the same records as a JSON array.  Results are
identical to running ``cooptimize`` per point — only faster::

    repro-tam batch d695 p21241 p31108 p93791 -W 16 24 32 --jobs 4

``--cache-dir DIR`` additionally backs every wrapper-table cache with
the persistent :class:`repro.service.TableStore` on DIR, so a second
invocation over the same cores skips wrapper design entirely.

The exploration service
-----------------------
``repro-tam serve`` starts the resident job server of
:mod:`repro.service`: a persistent worker pool plus job queue behind
a line-oriented JSON socket, so interactive design-space exploration
stops paying pool startup and table construction per request::

    repro-tam serve --port 7293 --cache-dir ~/.cache/repro-tam &
    repro-tam submit d695 -W 16 24 32 --port 7293

``submit`` sends a batch-identical grid to a running server, waits
(unless ``--no-wait``), and renders the same table/JSON as ``batch``.

Multi-tenant serving: ``serve --auth`` requires every request (except
``ping``) to carry a bearer token registered in ``tokens.json``
(``--tokens-file`` overrides the path, default next to the table
store in ``--cache-dir``); clients pass ``--token`` on ``submit`` and
``tail`` and may request a ``--priority`` class no higher than their
registered one.  ``--max-queue`` bounds the admission queue — under
overload the server sheds the lowest-priority queued work first, and
when nothing cheaper can be shed it rejects with a typed
``overloaded`` error carrying a ``retry_after`` hint the client
honours transparently.

Observability
-------------
``repro-tam report`` renders the run warehouse — the SQLite store a
``--cache-dir`` grid run (batch or service) appends every finished
grid to — as per-campaign tables: the grid results themselves
(``--view table``, bit-identical to what the live run printed),
the width/time Pareto front, the result trend across runs, and the
span-derived phase breakdown.  ``repro-tam tail JOB_ID`` follows a
running job's per-point events live (the same v2 stream ``submit
--stream`` uses).  ``--log-level`` on ``serve``/``batch``/``submit``
turns on the library's stderr logging; ``REPRO_TRACE=1`` in the
environment enables span tracing (off by default, no-op cost).

Static analysis
---------------
``repro-tam lint`` runs the project-invariant linter of
:mod:`repro.analysis.lint` — determinism in the hot scoring paths,
shared-memory lifecycle, pool picklability, the golden spec-schema
lock, and wire-protocol discipline (``python -m repro.analysis`` is
the identical entry point).  CI gates on it; see DESIGN.md
§"Invariants & static analysis".
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from typing import List, Optional

from repro.api.cli import (
    add_spec_arguments,
    grid_spec_from_args,
    spec_from_args,
)
from repro.engine import BatchRunner, grid_rows
from repro.engine.batch import BATCH_COLUMNS, align_point_telemetry
from repro.exceptions import ReproError
from repro.optimize.co_optimize import co_optimize
from repro.optimize.exhaustive import exhaustive_optimize
from repro.report.tables import TextTable
from repro.schedule.session import build_schedule
from repro.soc.complexity import test_complexity
from repro.soc.loader import load_source as _load

#: Shown on the main parser and every subcommand: the two entry
#: points are the same ``main`` and must never drift apart
#: (asserted by ``tests/test_cli_naming.py``).
ENTRY_POINT_EPILOG = (
    "Invoke as `repro-tam` (the installed console script) or "
    "`python -m repro` (from a source checkout) — the two entry "
    "points run the identical CLI."
)


def _add_log_level_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-level", default=None,
        choices=["debug", "info", "warning", "error"],
        help="configure stderr logging at this level (the library "
             "is silent by default: NullHandler on the 'repro' "
             "logger)",
    )


def _configure_logging(args: argparse.Namespace) -> None:
    level = getattr(args, "log_level", None)
    if level:
        logging.basicConfig(
            level=getattr(logging, level.upper()),
            format="%(asctime)s %(name)s %(levelname)s %(message)s",
        )


def _cmd_describe(args: argparse.Namespace) -> int:
    soc = _load(args.soc)
    print(soc.describe())
    print(f"test complexity: {test_complexity(soc):.1f}")
    return 0


def _cmd_cooptimize(args: argparse.Namespace) -> int:
    soc = _load(args.soc)
    # The shared translator builds the same canonical OptimizeSpec a
    # batch/submit grid point would — one resolution rule for every
    # surface.
    result = co_optimize(soc, spec=spec_from_args(args, args.width))
    if args.json:
        from repro.report.serialize import co_optimization_to_dict, to_json
        print(to_json(co_optimization_to_dict(result)))
        return 0
    print(result.summary())
    print(f"assignment: {result.final.vector_notation()}")
    if args.gantt:
        tables = result.tables
        times = [
            [tables[c.name].time(w) for w in result.partition]
            for c in soc
        ]
        schedule = build_schedule(
            result.final, times, [c.name for c in soc]
        )
        print(schedule.gantt())
    if args.stats:
        table = TextTable(
            ["B", "unique", "enumerated", "lb_pruned", "completed",
             "efficiency"],
            title="Partition_evaluate pruning statistics",
        )
        for stats in result.search.stats:
            table.add_row([
                stats.num_tams,
                stats.num_unique,
                stats.num_enumerated,
                stats.num_lb_pruned,
                stats.num_completed,
                f"{stats.efficiency:.4f}",
            ])
        print(table.render())
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.analysis.sweep import evaluate_point
    from repro.api.cli import search_spec_from_args

    soc = _load(args.soc)
    spec = search_spec_from_args(args, args.width)
    point = evaluate_point(
        soc, spec.total_width, num_tams=spec.num_tams,
        **spec.engine_options(),
    )
    if args.json:
        from repro.report.serialize import sweep_point_to_dict, to_json
        print(to_json(dict(sweep_point_to_dict(point), soc=soc.name)))
        return 0
    search = point.search
    assert search is not None  # mode="search" always attaches one
    certificate = search.certificate
    print(
        f"{soc.name} W={spec.total_width}: "
        f"T={point.testing_time} at B={point.num_tams} "
        f"partition {'+'.join(map(str, point.partition))}"
    )
    proven = " (proven optimal)" if certificate.is_provably_optimal \
        else ""
    print(
        f"certificate: bound={certificate.bound} "
        f"gap={certificate.gap:.2%}{proven} — "
        f"{certificate.evals} evals, "
        f"{certificate.improvements} improvements, "
        f"terminated by {certificate.terminated_by} "
        f"({certificate.elapsed_seconds:.2f}s, "
        f"strategy {search.strategy}, seed {search.seed})"
    )
    if args.trajectory:
        for eval_index, island_index, testing_time in search.trajectory:
            gap = testing_time / certificate.bound - 1.0
            print(
                f"  eval {eval_index} island {island_index}: "
                f"T={testing_time} gap={gap:.2%}"
            )
    return 0


def _cmd_exhaustive(args: argparse.Namespace) -> int:
    soc = _load(args.soc)
    result = exhaustive_optimize(
        soc,
        total_width=args.width,
        num_tams=args.num_tams or args.bmax,
        total_time_limit=args.time_limit,
    )
    print(result.summary())
    print(f"assignment: {result.best.vector_notation()}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.certificates import certify
    from repro.analysis.utilization import analyze_utilization

    soc = _load(args.soc)
    result = co_optimize(soc, spec=spec_from_args(args, args.width))

    print(result.summary())
    print(certify(soc, result.final, result.tables).describe())
    print(analyze_utilization(soc, result.final, result.tables).describe())
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    # One canonical GridSpec — the identical object `submit` sends to
    # a server, so a local batch and a remote submission of the same
    # arguments share one canonical content key.
    grid_spec = grid_spec_from_args(args)
    runner = BatchRunner(
        max_workers=args.jobs,
        cache_dir=args.cache_dir,
        share_tables=not args.no_share_tables,
    )
    grid = runner.run_grid(grid_spec)
    # Execution counters for --stats / --json: how the grid actually
    # ran — sharded jobs, and workers that lost the shared matrix and
    # silently paid for private tables (the slow path, now visible).
    runner_stats = {
        "jobs_sharded": runner.jobs_sharded,
        "shm_fallbacks": runner.shm_fallbacks,
        "pools_started": runner.pools_started,
    }
    if args.cache_dir:
        # A cached run is also a *recorded* run: append the grid
        # (results + telemetry) to the warehouse next to the table
        # store, under the same canonical key the service memo uses.
        from repro.api.specs import jobs_canonical_key
        from repro.obs.warehouse import warehouse_for
        from repro.service.server import grid_payload

        jobs = [job for job, _ in grid]
        results = [result for _, result in grid]
        warehouse = warehouse_for(args.cache_dir)
        assert warehouse is not None  # cache_dir is set
        warehouse.record_grid(
            jobs_canonical_key(jobs),
            grid_payload(jobs, results),
            source="batch",
            metrics=(
                runner.last_run_metrics.to_dict()
                if runner.last_run_metrics is not None else None
            ),
            point_telemetry=align_point_telemetry(
                results, runner.last_run_telemetry
            ),
            run_spans=runner.last_run_spans,
        )

    if args.json:
        from repro.report.serialize import sweep_point_to_dict, to_json
        records = [
            dict(sweep_point_to_dict(point), soc=job.soc.name)
            for job, point in grid
        ]
        print(to_json({
            "schema": 1, "kind": "batch", "points": records,
            "runner": runner_stats,
        }))
        return 0

    table = TextTable(
        list(BATCH_COLUMNS), title="batch sweep"
    )
    for row in grid_rows(grid):
        table.add_row([row[column] for column in BATCH_COLUMNS])
    print(table.render())
    if args.stats:
        print(
            f"runner: {runner_stats['jobs_sharded']} job(s) sharded, "
            f"{runner_stats['shm_fallbacks']} shared-table "
            f"fallback(s), {runner_stats['pools_started']} pool(s) "
            f"started"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.service import ExplorationServer, IPCServer

    exploration = ExplorationServer(
        max_workers=args.jobs,
        cache_dir=args.cache_dir,
        retries=args.retries,
        share_tables=not args.no_share_tables,
        max_records=args.max_records,
        require_auth=args.auth,
        tokens_path=args.tokens_file,
        max_queue_depth=args.max_queue,
    )
    server = IPCServer(exploration, host=args.host, port=args.port)
    host, port = server.address
    if args.port_file:
        # Published last thing before serving: a reader that sees the
        # file can connect.  Used by the CI smoke test.
        Path(args.port_file).write_text(f"{port}\n")
    print(f"repro-tam service listening on {host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    print("repro-tam service stopped", flush=True)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    # The same canonical GridSpec `batch` runs locally, submitted
    # over protocol v2 — so the server's (persisted) memo answers
    # either surface.
    grid_spec = grid_spec_from_args(args)
    with ServiceClient(
        host=args.host,
        port=args.port,
        token=args.token,
        priority=args.priority,
    ) as client:
        job_id = client.submit_grid(grid_spec)
        if args.no_wait:
            print(job_id)
            return 0
        if args.stream:
            # Per-point completion events, pushed as the grid runs —
            # the v2 `events` op instead of a blocking wait.  A
            # dropped connection resumes from the sequence cursor
            # (reconnect=True), so long grids survive transient
            # network hiccups without duplicating or losing points.
            # One formatter (`format_event_line`) with `tail`, so the
            # two surfaces narrate a grid identically.
            from repro.obs.report import format_event_line

            for event in client.events(
                job_id, timeout=args.timeout, reconnect=True,
            ):
                line, failed = format_event_line(event)
                print(
                    line,
                    file=sys.stderr if failed else sys.stdout,
                    flush=True,
                )
        else:
            record = client.wait(job_id, timeout=args.timeout)
            if record["status"] != "done":
                from repro.exceptions import ServiceError

                raise ServiceError(
                    f"job {job_id} ended as {record['status']}: "
                    f"{record.get('error', 'no result')}"
                )
        # The result payload carries the job's status snapshot too
        # (job id, cached flag), so one call serves the whole render.
        result = client.result(job_id)
    record = result

    if args.json:
        from repro.report.serialize import to_json
        print(to_json({
            "schema": 1,
            "kind": "batch",
            "job": job_id,
            "cached": record["cached"],
            "points": result["points"],
            "failures": result["failures"],
        }))
        return 0 if not result["failures"] else 1

    cached = " (cached)" if record["cached"] else ""
    from repro.obs.report import grid_table

    table = grid_table(
        result["points"], title=f"service grid {job_id}{cached}"
    )
    print(table.render())
    for failure in result["failures"]:
        print(
            f"FAILED {failure['soc']} W={failure['total_width']}: "
            f"{failure['error_type']}: {failure['error_message']}",
            file=sys.stderr,
        )
    return 0 if not result["failures"] else 1


def _cmd_report(args: argparse.Namespace) -> int:
    # Imported here (not from repro.obs's package root): the report
    # renderer builds *on* the engine/report layers, unlike the rest
    # of the obs package, which sits below them.
    from repro.exceptions import ConfigurationError
    from repro.obs.report import build_report, render_report
    from repro.obs.warehouse import RunWarehouse, warehouse_for

    if args.warehouse is not None:
        warehouse: Optional[RunWarehouse] = RunWarehouse(args.warehouse)
    else:
        warehouse = warehouse_for(args.cache_dir)
    if warehouse is None:
        raise ConfigurationError(
            "report needs --cache-dir DIR (the grid run's cache "
            "directory) or --warehouse FILE"
        )
    report = build_report(
        warehouse,
        view=args.view,
        campaign=args.campaign,
        run_id=args.run,
        limit=args.limit,
    )
    if args.format == "json":
        from repro.report.serialize import to_json
        print(to_json(report))
    else:
        print(render_report(report))
    return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    from repro.obs.report import format_event_line
    from repro.service import ServiceClient

    # The same stream `submit --stream` renders, attachable from a
    # second terminal at any time; --from replays from an event
    # sequence number (0 = everything the server still holds).
    any_failed = False
    with ServiceClient(
        host=args.host, port=args.port, token=args.token,
    ) as client:
        for event in client.events(
            args.job,
            start=args.start,
            timeout=args.timeout,
            reconnect=True,
        ):
            line, failed = format_event_line(event)
            any_failed = any_failed or failed
            print(
                line,
                file=sys.stderr if failed else sys.stdout,
                flush=True,
            )
    return 1 if any_failed else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the linter pulls in ast/tokenize machinery no
    # optimizing subcommand needs.
    from repro.analysis.lint.cli import run_lint_command

    return run_lint_command(args)


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser.

    The grid/spec flags (``-W``, ``-B``, ``--bmax``, the optimize
    knobs) are registered by the *shared* translator in
    :mod:`repro.api.cli` on every subcommand that optimizes, so the
    surfaces cannot drift: one declaration, one resolution rule, one
    canonical :class:`repro.api.GridSpec` behind ``cooptimize``,
    ``analyze``, ``batch`` and ``submit`` alike.
    """
    parser = argparse.ArgumentParser(
        prog="repro-tam",
        description="Wrapper/TAM co-optimization "
                    "(Iyengar/Chakrabarty/Marinissen, DATE 2002)",
        epilog=ENTRY_POINT_EPILOG,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    describe = sub.add_parser(
        "describe", help="print SOC contents",
        epilog=ENTRY_POINT_EPILOG,
    )
    describe.add_argument("soc", help=".soc file or benchmark name")
    describe.set_defaults(func=_cmd_describe)

    coopt = sub.add_parser(
        "cooptimize", help="run the paper's two-step method (P_NPAW)",
        epilog=ENTRY_POINT_EPILOG,
    )
    coopt.add_argument("soc", help=".soc file or benchmark name")
    add_spec_arguments(coopt)
    coopt.add_argument("--gantt", action="store_true",
                       help="print the test-session Gantt chart")
    coopt.add_argument("--stats", action="store_true",
                       help="print partition-pruning statistics")
    coopt.add_argument("--json", action="store_true",
                       help="emit the result record as JSON")
    coopt.set_defaults(func=_cmd_cooptimize)

    search = sub.add_parser(
        "search",
        help="run the anytime metaheuristic tier (SA/GA islands "
             "with a gap-vs-bound certificate)",
        epilog=ENTRY_POINT_EPILOG,
    )
    search.add_argument("soc", help=".soc file or benchmark name")
    add_spec_arguments(search, knobs=False)
    from repro.api.cli import add_search_arguments
    add_search_arguments(search)
    search.add_argument("--trajectory", action="store_true",
                        help="print the merged incumbent-improvement "
                             "trail after the certificate")
    search.add_argument("--json", action="store_true",
                        help="emit the result record as JSON")
    search.set_defaults(func=_cmd_search)

    exhaustive = sub.add_parser(
        "exhaustive", help="run the [8]-style exhaustive baseline",
        epilog=ENTRY_POINT_EPILOG,
    )
    exhaustive.add_argument("soc", help=".soc file or benchmark name")
    add_spec_arguments(exhaustive, bmax_default=2, knobs=False)
    exhaustive.add_argument("--time-limit", type=float, default=600.0,
                            help="total wall-clock budget in seconds")
    exhaustive.set_defaults(func=_cmd_exhaustive)

    analyze = sub.add_parser(
        "analyze",
        help="optimize, then report utilization and the optimality "
             "certificate",
        epilog=ENTRY_POINT_EPILOG,
    )
    analyze.add_argument("soc", help=".soc file or benchmark name")
    add_spec_arguments(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    batch = sub.add_parser(
        "batch",
        help="sweep SOCs x widths in parallel via the batch engine",
        epilog=ENTRY_POINT_EPILOG,
    )
    batch.add_argument("socs", nargs="+",
                       help=".soc files and/or benchmark names")
    add_spec_arguments(batch, multi_width=True)
    batch.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: one per CPU; "
                            "1 = inline sequential)")
    batch.add_argument("--json", action="store_true",
                       help="emit the grid as a JSON record")
    batch.add_argument("--stats", action="store_true",
                       help="print execution counters (sharded jobs, "
                            "shared-table fallbacks) after the table")
    batch.add_argument("--cache-dir", default=None,
                       help="persist wrapper time tables in this "
                            "directory (warm runs skip wrapper design)")
    batch.add_argument("--no-share-tables", action="store_true",
                       help="disable the shared-memory dense-matrix "
                            "transport (workers build private tables)")
    _add_log_level_argument(batch)
    batch.set_defaults(func=_cmd_batch)

    serve = sub.add_parser(
        "serve",
        help="run the resident exploration service (JSON IPC)",
        epilog=ENTRY_POINT_EPILOG,
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=7293,
                       help="TCP port (0 = let the OS pick; "
                            "default 7293)")
    serve.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: one per CPU; "
                            "1 = run grids inline)")
    serve.add_argument("--retries", type=int, default=0,
                       help="retry attempts per failed grid point")
    serve.add_argument("--cache-dir", default=None,
                       help="persist wrapper time tables AND the "
                            "grid-result memo in this directory "
                            "across jobs and restarts")
    serve.add_argument("--max-records", type=int, default=None,
                       help="keep at most this many finished job "
                            "records in memory, evicting the oldest "
                            "(default: keep all)")
    serve.add_argument("--no-share-tables", action="store_true",
                       help="disable the shared-memory dense-matrix "
                            "transport (workers build private tables)")
    serve.add_argument("--auth", action="store_true",
                       help="require bearer tokens: reject requests "
                            "whose token is not in the token file "
                            "(default: anonymous access)")
    serve.add_argument("--tokens-file", default=None,
                       help="token registry JSON (default: "
                            "tokens.json inside --cache-dir)")
    serve.add_argument("--max-queue", type=int, default=None,
                       help="bound the admission queue: beyond this "
                            "many queued jobs the server sheds "
                            "lower-priority work or rejects with a "
                            "retry-after hint (default: unbounded)")
    serve.add_argument("--port-file", default=None,
                       help="write the bound port to this file once "
                            "listening (for scripts and CI)")
    _add_log_level_argument(serve)
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit a batch grid to a running service",
        epilog=ENTRY_POINT_EPILOG,
    )
    submit.add_argument("socs", nargs="+",
                        help=".soc files and/or benchmark names "
                             "(resolved server-side)")
    add_spec_arguments(submit, multi_width=True)
    submit.add_argument("--host", default="127.0.0.1",
                        help="service address (default 127.0.0.1)")
    submit.add_argument("--port", type=int, default=7293,
                        help="service port (default 7293)")
    submit.add_argument("--no-wait", action="store_true",
                        help="print the job id and return instead of "
                             "waiting for results")
    submit.add_argument("--stream", action="store_true",
                        help="stream per-point completion events "
                             "while the grid runs (protocol v2)")
    submit.add_argument("--timeout", type=float, default=None,
                        help="max seconds to wait for completion")
    submit.add_argument("--token", default=None,
                        help="bearer token for servers running with "
                             "--auth")
    submit.add_argument("--priority", default=None,
                        choices=["high", "normal", "low"],
                        help="scheduling class for this job (capped "
                             "at the client's registered class)")
    submit.add_argument("--json", action="store_true",
                        help="emit the grid as a JSON record")
    _add_log_level_argument(submit)
    submit.set_defaults(func=_cmd_submit)

    # The report/tail choices come from repro.obs.report, imported
    # lazily in the handlers; the literal tuple here keeps parser
    # construction free of the engine import chain.
    report = sub.add_parser(
        "report",
        help="render the run warehouse (results, Pareto, trend, "
             "phase breakdown) recorded by --cache-dir grid runs",
        epilog=ENTRY_POINT_EPILOG,
    )
    report.add_argument("--cache-dir", default=None,
                        help="the grid runs' cache directory (the "
                             "warehouse lives next to the table "
                             "store)")
    report.add_argument("--warehouse", default=None,
                        help="path to a warehouse.sqlite file "
                             "(overrides --cache-dir)")
    report.add_argument("--campaign", default=None,
                        help="canonical grid key, or any unambiguous "
                             "prefix (default: the newest run's)")
    report.add_argument("--run", type=int, default=None,
                        help="pin a specific warehouse run id")
    report.add_argument("--view", default="table",
                        choices=["table", "pareto", "trend",
                                 "phases", "runs"],
                        help="what to render (default: the grid "
                             "results table)")
    report.add_argument("--limit", type=int, default=20,
                        help="max rows for the runs view "
                             "(default 20)")
    report.add_argument("--format", default="text",
                        choices=["text", "json"],
                        help="output format (default text)")
    report.set_defaults(func=_cmd_report)

    tail = sub.add_parser(
        "tail",
        help="follow a running job's per-point events live",
        epilog=ENTRY_POINT_EPILOG,
    )
    tail.add_argument("job", help="job id (from submit --no-wait)")
    tail.add_argument("--host", default="127.0.0.1",
                      help="service address (default 127.0.0.1)")
    tail.add_argument("--port", type=int, default=7293,
                      help="service port (default 7293)")
    tail.add_argument("--from", dest="start", type=int, default=0,
                      help="replay from this event sequence number "
                           "(default 0: everything)")
    tail.add_argument("--timeout", type=float, default=None,
                      help="max seconds to wait for the job to "
                           "finish")
    tail.add_argument("--token", default=None,
                      help="bearer token for servers running with "
                           "--auth")
    tail.set_defaults(func=_cmd_tail)

    lint = sub.add_parser(
        "lint",
        help="run the project-invariant static analysis "
             "(determinism, shm lifecycle, spec-schema lock, ...)",
        epilog=ENTRY_POINT_EPILOG,
    )
    from repro.analysis.lint.cli import add_lint_arguments
    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args)
    if os.environ.get("REPRO_TRACE", "").strip() not in ("", "0"):
        # Span tracing is opt-in (the disabled tracer is a no-op
        # singleton); the flag propagates to pool workers via the
        # runner's initializer.
        from repro.obs import TRACER
        TRACER.enable()
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output was piped into a consumer that closed early
        # (e.g. `repro-tam describe ... | head`); exit quietly.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
